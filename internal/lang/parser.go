package lang

import (
	"fmt"
	"strconv"
)

// Parse parses a full parallel for-loop program (the text a programmer
// would put under @parallel_for). Errors are *SyntaxError values
// carrying the offending source position.
func Parse(src string) (*Loop, error) { return ParseAt(src, 1) }

// ParseAt parses loop source whose first line is numbered startLine, so
// AST positions cite lines of the enclosing program file.
func ParseAt(src string, startLine int) (*Loop, error) {
	toks, err := LexAt(src, startLine)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	p.skipNewlines()
	loop, err := p.parseLoop()
	if err != nil {
		return nil, err
	}
	p.skipNewlines()
	if p.peek().Kind != TokEOF {
		return nil, p.errf("trailing input after loop: %s", p.peek())
	}
	return loop, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) errf(format string, args ...any) error {
	t := p.peek()
	return &SyntaxError{Pos: Pos{Line: t.Line, Col: t.Col}, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipNewlines() {
	for p.peek().Kind == TokNewline {
		p.next()
	}
}

func (p *parser) expectKeyword(kw string) error {
	t := p.peek()
	if t.Kind != TokKeyword || t.Text != kw {
		return p.errf("expected %q, got %s", kw, t)
	}
	p.next()
	return nil
}

func (p *parser) expect(k TokKind) (Token, error) {
	t := p.peek()
	if t.Kind != k {
		return t, p.errf("expected %s, got %s", k, t)
	}
	return p.next(), nil
}

func (p *parser) parseLoop() (*Loop, error) {
	forTok := p.peek()
	if err := p.expectKeyword("for"); err != nil {
		return nil, err
	}
	loop := &Loop{At: Pos{Line: forTok.Line, Col: forTok.Col}}
	if p.peek().Kind == TokLParen {
		p.next()
		key, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		loop.KeyVar = key.Text
		if _, err := p.expect(TokComma); err != nil {
			return nil, err
		}
		val, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		loop.ValVar = val.Text
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
	} else {
		key, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		loop.KeyVar = key.Text
	}
	if err := p.expectKeyword("in"); err != nil {
		return nil, err
	}
	iter, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	loop.IterVar = iter.Text
	loop.IterPos = Pos{Line: iter.Line, Col: iter.Col}
	if _, err := p.expect(TokNewline); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	loop.Body = body
	if err := p.expectKeyword("end"); err != nil {
		return nil, err
	}
	return loop, nil
}

// parseBlock parses statements until an 'end' / 'else' keyword (not
// consumed).
func (p *parser) parseBlock() ([]Stmt, error) {
	var out []Stmt
	for {
		p.skipNewlines()
		t := p.peek()
		if t.Kind == TokKeyword && (t.Text == "end" || t.Text == "else" || t.Text == "elseif") {
			return out, nil
		}
		if t.Kind == TokEOF {
			return nil, p.errf("unexpected EOF, missing 'end'")
		}
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.peek()
	if t.Kind == TokKeyword && t.Text == "if" {
		return p.parseIf()
	}
	if t.Kind == TokKeyword && t.Text == "for" {
		return p.parseForRange()
	}
	// Expression or assignment.
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	op := p.peek()
	if op.Kind == TokOp && (op.Text == "=" || op.Text == "+=" || op.Text == "-=" || op.Text == "*=" || op.Text == "/=") {
		switch lhs.(type) {
		case *Ident, *Index:
		default:
			return nil, p.errf("cannot assign to %s", lhs)
		}
		p.next()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokNewline); err != nil {
			return nil, err
		}
		return &Assign{Target: lhs, Op: op.Text, Value: rhs, At: NodePos(lhs)}, nil
	}
	if _, err := p.expect(TokNewline); err != nil {
		return nil, err
	}
	return &ExprStmt{X: lhs, At: NodePos(lhs)}, nil
}

func (p *parser) parseIf() (Stmt, error) {
	ifTok := p.peek()
	if err := p.expectKeyword("if"); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokNewline); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	node := &If{Cond: cond, Then: then, At: Pos{Line: ifTok.Line, Col: ifTok.Col}}
	t := p.peek()
	switch {
	case t.Kind == TokKeyword && t.Text == "else":
		p.next()
		if _, err := p.expect(TokNewline); err != nil {
			return nil, err
		}
		els, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		node.Else = els
		if err := p.expectKeyword("end"); err != nil {
			return nil, err
		}
	case t.Kind == TokKeyword && t.Text == "elseif":
		// Desugar elseif into a nested if in the else branch; reuse
		// parseIf by rewriting the token to 'if'.
		p.toks[p.pos].Text = "if"
		nested, err := p.parseIf()
		if err != nil {
			return nil, err
		}
		node.Else = []Stmt{nested}
		return node, nil
	default:
		if err := p.expectKeyword("end"); err != nil {
			return nil, err
		}
	}
	return node, nil
}

// parseForRange parses an inner sequential loop: for v = lo:hi ... end.
func (p *parser) parseForRange() (Stmt, error) {
	forTok := p.peek()
	if err := p.expectKeyword("for"); err != nil {
		return nil, err
	}
	v, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	op := p.peek()
	if op.Kind != TokOp || op.Text != "=" {
		return nil, p.errf("inner for-loop needs 'for %s = lo:hi'", v.Text)
	}
	p.next()
	lo, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokColon); err != nil {
		return nil, err
	}
	hi, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokNewline); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("end"); err != nil {
		return nil, err
	}
	return &ForRange{Var: v.Text, Lo: lo, Hi: hi, Body: body, At: Pos{Line: forTok.Line, Col: forTok.Col}}, nil
}

// Precedence climbing: comparison < additive < multiplicative < unary <
// power < postfix(index) < primary.
func (p *parser) parseExpr() (Expr, error) { return p.parseComparison() }

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokOp {
			return l, nil
		}
		switch t.Text {
		case "==", "!=", "<", "<=", ">", ">=":
			p.next()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: t.Text, L: l, R: r, At: Pos{Line: t.Line, Col: t.Col}}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokOp && (t.Text == "+" || t.Text == "-") {
			p.next()
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: t.Text, L: l, R: r, At: Pos{Line: t.Line, Col: t.Col}}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokOp && (t.Text == "*" || t.Text == "/") {
			p.next()
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: t.Text, L: l, R: r, At: Pos{Line: t.Line, Col: t.Col}}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.Kind == TokOp && t.Text == "-" {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnOp{Op: "-", X: x, At: Pos{Line: t.Line, Col: t.Col}}, nil
	}
	return p.parsePower()
}

func (p *parser) parsePower() (Expr, error) {
	l, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind == TokOp && t.Text == "^" {
		p.next()
		r, err := p.parsePower() // right associative
		if err != nil {
			return nil, err
		}
		return &BinOp{Op: "^", L: l, R: r, At: Pos{Line: t.Line, Col: t.Col}}, nil
	}
	return l, nil
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokLBracket {
		base, ok := x.(*Ident)
		if !ok {
			return nil, p.errf("can only subscript identifiers, not %s", x)
		}
		p.next()
		var subs []Expr
		for {
			sub, err := p.parseSubscript()
			if err != nil {
				return nil, err
			}
			subs = append(subs, sub)
			if p.peek().Kind == TokComma {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		x = &Index{Base: base.Name, Subs: subs, At: base.At}
	}
	return x, nil
}

func (p *parser) parseSubscript() (Expr, error) {
	if t := p.peek(); t.Kind == TokColon {
		p.next()
		return &RangeExpr{Full: true, At: Pos{Line: t.Line, Col: t.Col}}, nil
	}
	lo, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind == TokColon {
		p.next()
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &RangeExpr{Lo: lo, Hi: hi, At: NodePos(lo)}, nil
	}
	return lo, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.Text)
		}
		return &Num{Val: v, At: Pos{Line: t.Line, Col: t.Col}}, nil
	case TokKeyword:
		if t.Text == "true" || t.Text == "false" {
			p.next()
			return &Bool{Val: t.Text == "true", At: Pos{Line: t.Line, Col: t.Col}}, nil
		}
		return nil, p.errf("unexpected keyword %q in expression", t.Text)
	case TokIdent:
		p.next()
		if p.peek().Kind == TokLParen {
			p.next()
			var args []Expr
			if p.peek().Kind != TokRParen {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.peek().Kind == TokComma {
						p.next()
						continue
					}
					break
				}
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return &Call{Fn: t.Text, Args: args, At: Pos{Line: t.Line, Col: t.Col}}, nil
		}
		return &Ident{Name: t.Text, At: Pos{Line: t.Line, Col: t.Col}}, nil
	case TokLParen:
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return x, nil
	default:
		return nil, p.errf("unexpected %s in expression", t)
	}
}
