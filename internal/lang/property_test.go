package lang

import (
	"math/rand"
	"testing"
)

// randomExpr generates a random well-formed expression tree.
func randomExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch rng.Intn(3) {
		case 0:
			return &Num{Val: float64(rng.Intn(100))}
		case 1:
			return &Ident{Name: randName(rng)}
		default:
			return &Index{Base: "key", Subs: []Expr{&Num{Val: float64(1 + rng.Intn(2))}}}
		}
	}
	switch rng.Intn(5) {
	case 0:
		ops := []string{"+", "-", "*", "/", "^", "<", ">", "=="}
		return &BinOp{Op: ops[rng.Intn(len(ops))],
			L: randomExpr(rng, depth-1), R: randomExpr(rng, depth-1)}
	case 1:
		return &UnOp{Op: "-", X: randomExpr(rng, depth-1)}
	case 2:
		return &Call{Fn: "abs", Args: []Expr{randomExpr(rng, depth-1)}}
	case 3:
		return &Index{Base: "A", Subs: []Expr{randomExpr(rng, depth-1), &RangeExpr{Full: true}}}
	default:
		return randomExpr(rng, 0)
	}
}

func randName(rng *rand.Rand) string {
	names := []string{"x", "y", "foo", "w_1", "alpha"}
	return names[rng.Intn(len(names))]
}

func randomStmt(rng *rand.Rand, depth int) Stmt {
	if depth <= 0 || rng.Intn(3) == 0 {
		ops := []string{"=", "+=", "-=", "*=", "/="}
		return &Assign{
			Target: &Ident{Name: randName(rng)},
			Op:     ops[rng.Intn(len(ops))],
			Value:  randomExpr(rng, 2),
		}
	}
	switch rng.Intn(3) {
	case 0:
		st := &If{Cond: &BinOp{Op: "<", L: randomExpr(rng, 1), R: randomExpr(rng, 1)},
			Then: []Stmt{randomStmt(rng, depth-1)}}
		if rng.Intn(2) == 0 {
			st.Else = []Stmt{randomStmt(rng, depth-1)}
		}
		return st
	case 1:
		return &ForRange{Var: "k", Lo: &Num{Val: 1}, Hi: &Num{Val: float64(2 + rng.Intn(5))},
			Body: []Stmt{randomStmt(rng, depth-1)}}
	default:
		return &Assign{
			Target: &Index{Base: "A", Subs: []Expr{randomExpr(rng, 1), randomExpr(rng, 1)}},
			Op:     "=",
			Value:  randomExpr(rng, 2),
		}
	}
}

// TestPrintParseRoundTripProperty: for random ASTs, String() must parse
// back to an identical AST (by String equality) — the property the
// DefineLoop wire protocol relies on.
func TestPrintParseRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		loop := &Loop{KeyVar: "key", ValVar: "v", IterVar: "data"}
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			loop.Body = append(loop.Body, randomStmt(rng, 2))
		}
		src := loop.String()
		parsed, err := Parse(src)
		if err != nil {
			t.Fatalf("trial %d: printed program does not parse: %v\n%s", trial, err, src)
		}
		if parsed.String() != src {
			t.Fatalf("trial %d: round trip not stable:\n%s\nvs\n%s", trial, src, parsed.String())
		}
	}
}

// TestLexerNeverPanics: arbitrary byte soup must produce a token list
// or an error, never a panic or a hang.
func TestLexerNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	alphabet := []byte("abz019 _+-*/^=<>!()[]:,.#\nfor in end if else\t\"@$%&")
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(60)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alphabet[rng.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("lexer panic on %q: %v", buf, r)
				}
			}()
			Lex(string(buf))
		}()
	}
}

// TestParserNeverPanics: random token soup through the parser.
func TestParserNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	words := []string{"for", "in", "end", "if", "else", "x", "key", "1", "2.5",
		"+", "-", "*", "=", "+=", "(", ")", "[", "]", ",", ":", "\n", "dot"}
	for trial := 0; trial < 500; trial++ {
		var src string
		n := rng.Intn(30)
		for i := 0; i < n; i++ {
			src += words[rng.Intn(len(words))] + " "
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panic on %q: %v", src, r)
				}
			}()
			Parse(src)
		}()
	}
}
