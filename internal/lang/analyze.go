package lang

import (
	"sort"
	"strings"

	"orion/internal/diag"
	"orion/internal/ir"
)

// Env gives the static analyzer the driver-program context the Julia
// macro would see at expansion time: which identifiers are DistArrays
// (with their extents, known because Orion JIT-compiles after the
// iteration-space array is materialized), which are DistArray Buffers,
// and whether the loop demands ordered execution.
type Env struct {
	// Arrays maps DistArray names to their extents.
	Arrays map[string][]int64
	// Buffers maps DistArray Buffer names to the backing array name.
	Buffers map[string]string
	// Ordered requests lexicographic iteration order.
	Ordered bool
}

// builtins the interpreter provides; calls to them are not inherited
// variables.
var builtins = map[string]bool{
	"dot": true, "abs2": true, "abs": true, "sqrt": true, "exp": true,
	"log": true, "floor": true, "ceil": true, "min": true, "max": true,
	"length": true, "sigmoid": true, "zeros": true, "rand": true, "__record": true,
}

// builtinNames returns the builtin function names, sorted, for fix
// notes.
func builtinNames() string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		if n == "__record" {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// Analyze statically extracts the loop information record (Fig. 6) from
// the parsed loop: iteration space, DistArray references with
// classified subscripts, and inherited variables. On failure the error
// carries the first diagnostic's source position, code, and fix note;
// use AnalyzeDiags to obtain the full structured list.
func Analyze(loop *Loop, env *Env) (*ir.LoopSpec, error) {
	spec, diags := AnalyzeDiags(loop, env, "")
	if err := diags.Err(); err != nil {
		return nil, err
	}
	return spec, nil
}

// AnalyzeDiags is Analyze with structured diagnostics: every hard error
// is emitted as a positioned diag.Diagnostic (code ORN01x) and the walk
// continues past errors so one run reports as many problems as
// possible. The spec is non-nil only when no errors were found. file
// names the source in diagnostic positions (may be empty).
func AnalyzeDiags(loop *Loop, env *Env, file string) (*ir.LoopSpec, diag.List) {
	a := &analyzer{loop: loop, env: env, file: file}
	a.allAssigned, a.assignTargets = assignedNames(loop.Body)
	dims, iterKnown := env.Arrays[loop.IterVar]
	if !iterKnown {
		a.errorf(diag.CodeUnknownIter, loop.IterPos,
			"declare the array with CreateArray (or an 'array' line in the program preamble) before the loop",
			"iteration space %q is not a known DistArray", loop.IterVar)
	}
	spec := &ir.LoopSpec{
		Name:           loop.IterVar + "_loop",
		IterSpaceArray: loop.IterVar,
		Dims:           append([]int64(nil), dims...),
		Ordered:        env.Ordered,
	}
	a.stmts(loop.Body)
	spec.Refs = a.refs
	spec.Inherited = a.inherited()
	if !a.diags.HasErrors() {
		a.validateSpec(spec)
	}
	if a.diags.HasErrors() {
		return nil, a.diags
	}
	return spec, a.diags
}

type analyzer struct {
	loop      *Loop
	env       *Env
	file      string
	diags     diag.List
	refs      []ir.ArrayRef
	assigned  map[string]bool
	used      map[string]bool
	rangeVars map[string]bool
	// allAssigned holds every name the body ever assigns (including
	// inner range counters), precomputed before the walk: subscript
	// classification must not treat a body-assigned variable as a
	// loop-invariant symbolic stride.
	allAssigned map[string]bool
	// assignTargets holds names assigned by Assign statements only
	// (excluding range counters bound by their own for loop); a counter
	// that is also reassigned loses its static bounds.
	assignTargets map[string]bool
	// rangeBounds maps inner range counters in scope to their constant
	// inclusive bounds, maintained during the walk.
	rangeBounds map[string][2]int64
}

// assignedNames precollects assignment targets from the body: all holds
// every assigned name including range counters; targets holds only
// Assign statement targets.
func assignedNames(body []Stmt) (all, targets map[string]bool) {
	all = make(map[string]bool)
	targets = make(map[string]bool)
	var walk func([]Stmt)
	walk = func(stmts []Stmt) {
		for _, st := range stmts {
			switch s := st.(type) {
			case *Assign:
				if id, ok := s.Target.(*Ident); ok {
					all[id.Name] = true
					targets[id.Name] = true
				}
			case *If:
				walk(s.Then)
				walk(s.Else)
			case *ForRange:
				all[s.Var] = true
				walk(s.Body)
			}
		}
	}
	walk(body)
	return all, targets
}

func (a *analyzer) pos(p Pos) diag.Pos {
	return diag.Pos{File: a.file, Line: p.Line, Col: p.Col}
}

func (a *analyzer) errorf(code string, p Pos, note, format string, args ...any) {
	a.diags.Add(diag.Errorf(code, a.pos(p), note, format, args...))
}

// validateSpec re-runs ir.LoopSpec.Validate's checks with source
// positions where the analyzer has them (subscript dimension bounds),
// falling back to the structural validator for the rest.
func (a *analyzer) validateSpec(spec *ir.LoopSpec) {
	bad := false
	for _, r := range spec.Refs {
		for i, s := range r.Subs {
			if (s.Kind == ir.SubIndex || s.Kind == ir.SubAffine) && (s.Dim < 0 || s.Dim >= len(spec.Dims)) {
				bad = true
				a.errorf(diag.CodeDimRange, Pos{Line: r.Line, Col: r.Col},
					"the loop key has one entry per iteration-space dimension; use key[1].."+
						"key[n] where n is the iteration array's rank",
					"reference %s subscript %d uses loop index key[%d], but the iteration space %q has only %d dimension(s)",
					r, i+1, s.Dim+1, spec.IterSpaceArray, len(spec.Dims))
			}
		}
	}
	if bad {
		return
	}
	if err := spec.Validate(); err != nil {
		a.errorf(diag.CodeBadSpec, a.loop.At,
			"the extracted loop information record is structurally invalid; check the array declarations",
			"%v", err)
	}
}

func (a *analyzer) stmts(body []Stmt) {
	for _, st := range body {
		a.stmt(st)
	}
}

func (a *analyzer) stmt(st Stmt) {
	switch s := st.(type) {
	case *Assign:
		a.expr(s.Value)
		switch t := s.Target.(type) {
		case *Ident:
			if a.assigned == nil {
				a.assigned = make(map[string]bool)
			}
			if s.Op != "=" {
				// Compound assignment reads the previous value.
				a.use(t.Name)
			}
			a.assigned[t.Name] = true
		case *Index:
			// Subscript expressions are evaluated (reads).
			for _, sub := range t.Subs {
				a.expr(sub)
			}
			if a.assigned[t.Base] {
				// Element write into a body-local vector (e.g. p[k] = x
				// after p = zeros(K)): not a DistArray reference.
				return
			}
			array, buffered, known := a.resolveArray(t.Base)
			if !known {
				a.errorf(diag.CodeBadWriteTarget, t.At,
					"declare it with CreateArray, or create a DistArrayBuffer over the target array and write through that",
					"assignment to subscripted %q, which is neither a DistArray nor a buffer", t.Base)
				return
			}
			if s.Op != "=" && !buffered {
				// Compound assignment also reads the element.
				a.addRef(array, t, false, false)
			}
			a.addRef(array, t, true, buffered)
		default:
			a.errorf(diag.CodeBadAssign, s.At,
				"only driver variables (x = ...) and DistArray elements (A[...] = ...) can be assigned",
				"cannot assign to %s", s.Target)
		}
	case *If:
		a.expr(s.Cond)
		a.stmts(s.Then)
		a.stmts(s.Else)
	case *ForRange:
		a.expr(s.Lo)
		a.expr(s.Hi)
		if a.assigned == nil {
			a.assigned = make(map[string]bool)
		}
		if a.rangeVars == nil {
			a.rangeVars = make(map[string]bool)
		}
		a.assigned[s.Var] = true
		a.rangeVars[s.Var] = true
		if a.rangeBounds == nil {
			a.rangeBounds = make(map[string][2]int64)
		}
		prev, had := a.rangeBounds[s.Var]
		lo, okL := constFold(s.Lo)
		hi, okH := constFold(s.Hi)
		if okL && okH && lo <= hi && !a.assignTargets[s.Var] {
			a.rangeBounds[s.Var] = [2]int64{lo, hi}
		} else {
			delete(a.rangeBounds, s.Var)
		}
		a.stmts(s.Body)
		if had {
			a.rangeBounds[s.Var] = prev
		} else {
			delete(a.rangeBounds, s.Var)
		}
	case *ExprStmt:
		a.expr(s.X)
	default:
		a.errorf(diag.CodeBadSpec, NodePos(st), "this statement form is not supported in loop bodies", "unknown statement %T", st)
	}
}

func (a *analyzer) expr(e Expr) {
	switch x := e.(type) {
	case *Num, *Bool:
	case *Ident:
		a.use(x.Name)
	case *UnOp:
		a.expr(x.X)
	case *BinOp:
		a.expr(x.L)
		a.expr(x.R)
	case *Call:
		if !builtins[x.Fn] {
			a.errorf(diag.CodeUnknownFn, x.At,
				"loop bodies may only call the interpreter builtins: "+builtinNames(),
				"unknown function %q", x.Fn)
		}
		for _, arg := range x.Args {
			a.expr(arg)
		}
	case *RangeExpr:
		if x.Full {
			return
		}
		a.expr(x.Lo)
		a.expr(x.Hi)
	case *Index:
		for _, sub := range x.Subs {
			a.expr(sub)
		}
		if x.Base == a.loop.KeyVar || a.assigned[x.Base] {
			return // key tuple or body-local vector access
		}
		array, buffered, known := a.resolveArray(x.Base)
		if !known {
			a.errorf(diag.CodeUnknownSub, x.At,
				"declare it with CreateArray, or spell the loop key variable correctly",
				"subscripted %q is neither a DistArray, a buffer, nor the loop key", x.Base)
			return
		}
		if buffered {
			a.errorf(diag.CodeBufferRead, x.At,
				"DistArray Buffers apply their writes after the loop (Section 3.3); read the backing array "+
					array+" instead",
				"DistArray Buffer %q is write-only in the loop body", x.Base)
			return
		}
		a.addRef(array, x, false, false)
	default:
		a.errorf(diag.CodeBadSpec, NodePos(e), "this expression form is not supported in loop bodies", "unknown expression %T", e)
	}
}

func (a *analyzer) resolveArray(name string) (array string, buffered, known bool) {
	if _, ok := a.env.Arrays[name]; ok {
		return name, false, true
	}
	if target, ok := a.env.Buffers[name]; ok {
		return target, true, true
	}
	return "", false, false
}

func (a *analyzer) use(name string) {
	if name == a.loop.KeyVar || name == a.loop.ValVar {
		return
	}
	if _, isArr := a.env.Arrays[name]; isArr {
		return
	}
	if _, isBuf := a.env.Buffers[name]; isBuf {
		return
	}
	if a.used == nil {
		a.used = make(map[string]bool)
	}
	a.used[name] = true
}

func (a *analyzer) addRef(array string, idx *Index, isWrite, buffered bool) {
	subs := make([]ir.Subscript, len(idx.Subs))
	for i, sub := range idx.Subs {
		subs[i] = a.classify(sub)
	}
	ref := ir.ArrayRef{Array: array, Subs: subs, IsWrite: isWrite, Buffered: buffered,
		Line: idx.At.Line, Col: idx.At.Col}
	// Deduplicate identical static references: the same textual access
	// appearing twice yields one static reference.
	for _, r := range a.refs {
		if r.String() == ref.String() {
			return
		}
	}
	a.refs = append(a.refs, ref)
}

// classify maps a subscript expression to the (dim_idx, const, stype)
// record of Section 4.2: at most one loop index variable plus or minus
// a constant is captured accurately; anything more complex is
// conservatively Runtime.
func (a *analyzer) classify(e Expr) ir.Subscript {
	switch x := e.(type) {
	case *RangeExpr:
		if x.Full {
			return ir.FullRange()
		}
		lo, okL := constFold(x.Lo)
		hi, okH := constFold(x.Hi)
		if okL && okH {
			// The DSL uses 1-based inclusive ranges (Julia style);
			// internal coordinates are 0-based.
			return ir.Range(lo-1, hi-1)
		}
		return ir.Runtime()
	case *Num:
		return ir.Const(int64(x.Val) - 1)
	case *Index:
		if dim, ok := a.keyIndex(x); ok {
			return ir.Index(dim, 0)
		}
		return ir.Runtime()
	case *BinOp:
		if x.Op == "+" || x.Op == "-" {
			if ki, ok := x.L.(*Index); ok {
				if dim, ok2 := a.keyIndex(ki); ok2 {
					if c, ok3 := constFold(x.R); ok3 {
						if x.Op == "-" {
							c = -c
						}
						return ir.Index(dim, c)
					}
				}
			}
			if ki, ok := x.R.(*Index); ok && x.Op == "+" {
				if dim, ok2 := a.keyIndex(ki); ok2 {
					if c, ok3 := constFold(x.L); ok3 {
						return ir.Index(dim, c)
					}
				}
			}
			// General affine forms: c*key[d] ± b, g*key[d] ± b (symbolic
			// stride g), and windows core + j for an inner range counter
			// j with constant bounds.
			if dim, coeff, coeffVar, ok := a.affineTerm(x.L); ok {
				if c, ok3 := constFold(x.R); ok3 {
					if x.Op == "-" {
						c = -c
					}
					return a.affineSub(dim, coeff, coeffVar, c, 1)
				}
				if id, iok := x.R.(*Ident); iok && x.Op == "+" {
					if b, bok := a.rangeBounds[id.Name]; bok {
						return a.affineSub(dim, coeff, coeffVar, b[0], b[1]-b[0]+1)
					}
				}
			}
			if x.Op == "+" {
				if dim, coeff, coeffVar, ok := a.affineTerm(x.R); ok {
					if c, ok3 := constFold(x.L); ok3 {
						return a.affineSub(dim, coeff, coeffVar, c, 1)
					}
					if id, iok := x.L.(*Ident); iok {
						if b, bok := a.rangeBounds[id.Name]; bok {
							return a.affineSub(dim, coeff, coeffVar, b[0], b[1]-b[0]+1)
						}
					}
				}
			}
		}
		if x.Op == "*" {
			if dim, coeff, coeffVar, ok := a.affineTerm(x); ok {
				return a.affineSub(dim, coeff, coeffVar, 0, 1)
			}
		}
		if c, ok := constFold(e); ok {
			return ir.Const(c - 1)
		}
		return ir.Runtime()
	default:
		if c, ok := constFold(e); ok {
			return ir.Const(c - 1)
		}
		return ir.Runtime()
	}
}

// affineTerm recognizes the multiplicative core of an affine subscript:
// key[d], c*key[d], key[d]*c, g*key[d], or key[d]*g, where c is a
// non-zero integer constant and g a loop-invariant driver variable (the
// symbolic-stride case). Returns the 0-based loop dimension and the
// coefficient — coeffVar non-empty for the symbolic form.
func (a *analyzer) affineTerm(e Expr) (dim int, coeff int64, coeffVar string, ok bool) {
	if ki, isIdx := e.(*Index); isIdx {
		if d, k := a.keyIndex(ki); k {
			return d, 1, "", true
		}
		return 0, 0, "", false
	}
	x, isBin := e.(*BinOp)
	if !isBin || x.Op != "*" {
		return 0, 0, "", false
	}
	side := func(keySide, coefSide Expr) (int, int64, string, bool) {
		ki, isIdx := keySide.(*Index)
		if !isIdx {
			return 0, 0, "", false
		}
		d, k := a.keyIndex(ki)
		if !k {
			return 0, 0, "", false
		}
		if c, cok := constFold(coefSide); cok && c != 0 {
			return d, c, "", true
		}
		if id, iok := coefSide.(*Ident); iok && a.symbolicCoeff(id.Name) {
			return d, 0, id.Name, true
		}
		return 0, 0, "", false
	}
	if d, c, v, k := side(x.L, x.R); k {
		return d, c, v, true
	}
	return side(x.R, x.L)
}

// symbolicCoeff reports whether name can serve as a symbolic stride: a
// driver variable the body never reassigns, so its value is fixed for
// the whole loop and known to the driver at dispatch.
func (a *analyzer) symbolicCoeff(name string) bool {
	if name == a.loop.KeyVar || name == a.loop.ValVar || builtins[name] {
		return false
	}
	if _, isArr := a.env.Arrays[name]; isArr {
		return false
	}
	if _, isBuf := a.env.Buffers[name]; isBuf {
		return false
	}
	return !a.allAssigned[name]
}

// affineSub converts the DSL-level affine form coeff*key[dim] + b (over
// 1-based values, a window of span consecutive elements) into the
// 0-based IR record: element = coeff*key_dsl + b - 1 + [0, span-1].
func (a *analyzer) affineSub(dim int, coeff int64, coeffVar string, b, span int64) ir.Subscript {
	if coeffVar != "" {
		return ir.AffineVar(dim, coeffVar, b-1, span)
	}
	if coeff == 1 && span == 1 {
		return ir.Index(dim, b-1) // unit stride: the classic SubIndex form
	}
	return ir.Affine(dim, coeff, b-1, span)
}

// keyIndex recognizes key[k] (1-based) and returns the 0-based loop
// dimension.
func (a *analyzer) keyIndex(x *Index) (int, bool) {
	if x.Base != a.loop.KeyVar || len(x.Subs) != 1 {
		return 0, false
	}
	c, ok := constFold(x.Subs[0])
	if !ok {
		return 0, false
	}
	return int(c - 1), true
}

// constFold evaluates integer constant expressions.
func constFold(e Expr) (int64, bool) {
	switch x := e.(type) {
	case *Num:
		if x.Val == float64(int64(x.Val)) {
			return int64(x.Val), true
		}
		return 0, false
	case *UnOp:
		if x.Op == "-" {
			v, ok := constFold(x.X)
			return -v, ok
		}
		return 0, false
	case *BinOp:
		l, okL := constFold(x.L)
		r, okR := constFold(x.R)
		if !okL || !okR {
			return 0, false
		}
		switch x.Op {
		case "+":
			return l + r, true
		case "-":
			return l - r, true
		case "*":
			return l * r, true
		default:
			return 0, false
		}
	default:
		return 0, false
	}
}

func (a *analyzer) inherited() []string {
	var out []string
	for name := range a.used {
		if a.rangeVars[name] {
			continue // loop counters are bound, not inherited
		}
		if !a.assigned[name] || compoundOnly(a.loop.Body, name) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// compoundOnly reports whether every assignment to name is a compound
// assignment (accumulator pattern: the variable's initial value comes
// from the driver).
func compoundOnly(body []Stmt, name string) bool {
	plain := false
	var walk func([]Stmt)
	walk = func(stmts []Stmt) {
		for _, st := range stmts {
			switch s := st.(type) {
			case *Assign:
				if id, ok := s.Target.(*Ident); ok && id.Name == name && s.Op == "=" {
					plain = true
				}
			case *If:
				walk(s.Then)
				walk(s.Else)
			case *ForRange:
				walk(s.Body)
			}
		}
	}
	walk(body)
	return !plain
}

// Accumulators returns the names the loop body only ever
// compound-assigns — the accumulator variables whose per-worker
// instances the runtime aggregates (Section 3.4).
func Accumulators(loop *Loop) []string {
	seen := map[string]bool{}
	var out []string
	var walk func(body []Stmt)
	walk = func(body []Stmt) {
		for _, st := range body {
			switch s := st.(type) {
			case *Assign:
				if id, ok := s.Target.(*Ident); ok && s.Op != "=" && !seen[id.Name] {
					if compoundOnly(loop.Body, id.Name) {
						seen[id.Name] = true
						out = append(out, id.Name)
					}
				}
			case *If:
				walk(s.Then)
				walk(s.Else)
			case *ForRange:
				walk(s.Body)
			}
		}
	}
	walk(loop.Body)
	sort.Strings(out)
	return out
}
