package lang

import (
	"fmt"
	"math"
)

// Value is a runtime value: float64, []float64, bool, or a key tuple
// ([]int64).
type Value interface{}

// ArrayAccess is the element-level view of a DistArray the interpreter
// needs. *dsm.DistArray implements it; the distributed runtime binds
// partition and parameter-server views instead, which lets the same
// interpreted loop body run on a worker against its local partitions.
type ArrayAccess interface {
	Dims() []int64
	At(idx ...int64) float64
	SetAt(v float64, idx ...int64)
}

// BufferAccess is the write-side of a DistArray Buffer.
// *dsm.Buffer implements it.
type BufferAccess interface {
	Put(update float64, idx ...int64) bool
}

// Iterable is what RunLoop needs from the iteration-space array.
type Iterable interface {
	ForEach(f func(idx []int64, v float64))
}

// IterableUntil is the early-termination variant: the walk stops as
// soon as f returns false. *dsm.DistArray implements it; RunLoop uses
// it so an iteration error stops the walk instead of visiting (and
// skipping) every remaining element.
type IterableUntil interface {
	ForEachUntil(f func(idx []int64, v float64) bool)
}

// forEachStop walks an iteration space, stopping at the first error f
// returns. Iterables without early termination fall back to a full
// walk that skips elements after the first error.
func forEachStop(iter Iterable, f func(idx []int64, v float64) error) error {
	var firstErr error
	if u, ok := iter.(IterableUntil); ok {
		u.ForEachUntil(func(idx []int64, v float64) bool {
			firstErr = f(idx, v)
			return firstErr == nil
		})
		return firstErr
	}
	iter.ForEach(func(idx []int64, v float64) {
		if firstErr != nil {
			return
		}
		firstErr = f(idx, v)
	})
	return firstErr
}

// Machine executes DSL loop bodies against DistArrays — the runtime
// counterpart of the code the Julia implementation generates during
// macro expansion.
type Machine struct {
	// Arrays binds DistArray names.
	Arrays map[string]ArrayAccess
	// Buffers binds DistArray Buffer names.
	Buffers map[string]BufferAccess
	// Globals holds driver-program variables visible to the loop
	// (inherited read-only variables and accumulators). Compound
	// assignments to a global update it in place (accumulator
	// semantics on this worker).
	Globals map[string]Value
	// Rng, when set, backs the rand() builtin; leave nil to make
	// rand() an error (deterministic programs).
	Rng RandSource
	// Recorder, when set, intercepts reads of the arrays in its set:
	// the subscripts are recorded and a zero value returned. Used by
	// the synthesized prefetch function (Section 4.4).
	Recorder *Recorder
	// StepBudget, when non-zero, bounds inner for-range body
	// executions across the machine's lifetime; exceeding it is an
	// error. Used to bound fuzzed programs.
	StepBudget int64
	// VecLimit, when non-zero, bounds zeros() vector lengths.
	VecLimit int64
}

// RandSource is the rand() builtin's backing generator.
type RandSource interface {
	Float64() float64
}

// Recorder collects the DistArray element indices a sliced loop body
// would read.
type Recorder struct {
	Targets map[string]bool
	// Indices maps array name to flattened element offsets, in record
	// order (may contain duplicates; callers dedupe).
	Indices map[string][]int64
}

// NewRecorder builds a recorder for the given arrays.
func NewRecorder(targets ...string) *Recorder {
	m := make(map[string]bool, len(targets))
	for _, t := range targets {
		m[t] = true
	}
	return &Recorder{Targets: m, Indices: make(map[string][]int64)}
}

// NewMachine builds an interpreter instance.
func NewMachine() *Machine {
	return &Machine{
		Arrays:  make(map[string]ArrayAccess),
		Buffers: make(map[string]BufferAccess),
		Globals: make(map[string]Value),
	}
}

// RunLoop executes the loop body once per element of the iteration
// space array, in deterministic element order. The bound iteration
// array must be Iterable (a *dsm.DistArray is).
func (m *Machine) RunLoop(loop *Loop) error {
	bound, ok := m.Arrays[loop.IterVar]
	if !ok {
		return fmt.Errorf("lang: iteration space %q not bound", loop.IterVar)
	}
	iter, ok := bound.(Iterable)
	if !ok {
		return fmt.Errorf("lang: iteration space %q is not iterable on this machine", loop.IterVar)
	}
	return forEachStop(iter, func(idx []int64, v float64) error {
		return m.RunIteration(loop, idx, v)
	})
}

// RunIteration executes the loop body for one iteration.
func (m *Machine) RunIteration(loop *Loop, key []int64, val float64) error {
	scope := &scope{m: m, vars: make(map[string]Value)}
	scope.vars[loop.KeyVar] = append([]int64(nil), key...)
	if loop.ValVar != "" {
		scope.vars[loop.ValVar] = val
	}
	return m.exec(loop.Body, scope)
}

type scope struct {
	m    *Machine
	vars map[string]Value
}

func (s *scope) lookup(name string) (Value, bool) {
	if v, ok := s.vars[name]; ok {
		return v, true
	}
	v, ok := s.m.Globals[name]
	return v, ok
}

func (s *scope) set(name string, v Value) {
	if _, ok := s.m.Globals[name]; ok {
		if _, local := s.vars[name]; !local {
			s.m.Globals[name] = v
			return
		}
	}
	s.vars[name] = v
}

func (m *Machine) exec(body []Stmt, sc *scope) error {
	for _, st := range body {
		switch s := st.(type) {
		case *Assign:
			if err := m.execAssign(s, sc); err != nil {
				return err
			}
		case *If:
			cond, err := m.eval(s.Cond, sc)
			if err != nil {
				return err
			}
			b, ok := cond.(bool)
			if !ok {
				return fmt.Errorf("lang: if condition is not boolean: %s", s.Cond)
			}
			if b {
				if err := m.exec(s.Then, sc); err != nil {
					return err
				}
			} else if err := m.exec(s.Else, sc); err != nil {
				return err
			}
		case *ForRange:
			lo, err := m.evalInt(s.Lo, sc)
			if err != nil {
				return err
			}
			hi, err := m.evalInt(s.Hi, sc)
			if err != nil {
				return err
			}
			for v := lo; v <= hi; v++ {
				if m.StepBudget != 0 {
					m.StepBudget--
					if m.StepBudget == 0 {
						return fmt.Errorf("lang: step budget exhausted")
					}
				}
				sc.vars[s.Var] = float64(v)
				if err := m.exec(s.Body, sc); err != nil {
					return err
				}
			}
		case *ExprStmt:
			if _, err := m.eval(s.X, sc); err != nil {
				return err
			}
		default:
			return fmt.Errorf("lang: cannot execute %T", st)
		}
	}
	return nil
}

func (m *Machine) execAssign(s *Assign, sc *scope) error {
	rhs, err := m.eval(s.Value, sc)
	if err != nil {
		return err
	}
	switch t := s.Target.(type) {
	case *Ident:
		if s.Op == "=" {
			sc.set(t.Name, rhs)
			return nil
		}
		cur, ok := sc.lookup(t.Name)
		if !ok {
			return fmt.Errorf("lang: %s of undefined variable %q", s.Op, t.Name)
		}
		nv, err := applyBin(string(s.Op[0]), cur, rhs)
		if err != nil {
			return err
		}
		sc.set(t.Name, nv)
		return nil
	case *Index:
		return m.writeIndex(t, s.Op, rhs, sc)
	default:
		return fmt.Errorf("lang: bad assignment target %s", s.Target)
	}
}

// resolvedSub is a concrete subscript: a point or a range.
type resolvedSub struct {
	point   int64
	lo, hi  int64 // inclusive, 0-based
	isRange bool
}

func (m *Machine) resolveSubs(base string, subs []Expr, dims []int64, sc *scope) ([]resolvedSub, error) {
	if len(subs) != len(dims) {
		return nil, fmt.Errorf("lang: %s: %d subscripts for %d dims", base, len(subs), len(dims))
	}
	out := make([]resolvedSub, len(subs))
	for i, sub := range subs {
		if r, ok := sub.(*RangeExpr); ok {
			if r.Full {
				out[i] = resolvedSub{isRange: true, lo: 0, hi: dims[i] - 1}
				continue
			}
			lo, err := m.evalInt(r.Lo, sc)
			if err != nil {
				return nil, err
			}
			hi, err := m.evalInt(r.Hi, sc)
			if err != nil {
				return nil, err
			}
			out[i] = resolvedSub{isRange: true, lo: lo - 1, hi: hi - 1}
			continue
		}
		v, err := m.evalInt(sub, sc)
		if err != nil {
			return nil, err
		}
		out[i] = resolvedSub{point: v - 1}
	}
	return out, nil
}

func (m *Machine) evalInt(e Expr, sc *scope) (int64, error) {
	v, err := m.eval(e, sc)
	if err != nil {
		return 0, err
	}
	f, ok := v.(float64)
	if !ok {
		return 0, fmt.Errorf("lang: subscript %s is not a number", e)
	}
	return int64(f), nil
}

// readIndex evaluates A[subs...]: a scalar for all-point subscripts, a
// vector when exactly one subscript is a range.
func (m *Machine) readIndex(x *Index, sc *scope) (Value, error) {
	// key tuple access: key[k] is 1-based.
	if kv, ok := sc.lookup(x.Base); ok {
		if key, isKey := kv.([]int64); isKey {
			if len(x.Subs) != 1 {
				return nil, fmt.Errorf("lang: key tuple takes one subscript")
			}
			k, err := m.evalInt(x.Subs[0], sc)
			if err != nil {
				return nil, err
			}
			if k < 1 || int(k) > len(key) {
				return nil, fmt.Errorf("lang: key subscript %d out of range", k)
			}
			// DSL coordinates are 1-based.
			return float64(key[k-1] + 1), nil
		}
		// Subscripting a local vector variable: v[i].
		if vec, isVec := kv.([]float64); isVec {
			if len(x.Subs) != 1 {
				return nil, fmt.Errorf("lang: vector takes one subscript")
			}
			i, err := m.evalInt(x.Subs[0], sc)
			if err != nil {
				return nil, err
			}
			if i < 1 || int(i) > len(vec) {
				return nil, fmt.Errorf("lang: vector subscript %d out of range", i)
			}
			return vec[i-1], nil
		}
	}
	arr, ok := m.Arrays[x.Base]
	if !ok {
		return nil, fmt.Errorf("lang: read of unknown array %q", x.Base)
	}
	rs, err := m.resolveSubs(x.Base, x.Subs, arr.Dims(), sc)
	if err != nil {
		return nil, err
	}
	if m.Recorder != nil && m.Recorder.Targets[x.Base] {
		m.recordRead(x.Base, arr, rs)
		return m.zeroFor(rs), nil
	}
	return readResolved(x.Base, arr, rs)
}

func (m *Machine) recordRead(name string, arr ArrayAccess, rs []resolvedSub) {
	dims := arr.Dims()
	idx := make([]int64, len(rs))
	var rec func(d int)
	rec = func(d int) {
		if d == len(rs) {
			m.Recorder.Indices[name] = append(m.Recorder.Indices[name], flattenIndex(dims, idx))
			return
		}
		if rs[d].isRange {
			for v := rs[d].lo; v <= rs[d].hi; v++ {
				idx[d] = v
				rec(d + 1)
			}
			return
		}
		idx[d] = rs[d].point
		rec(d + 1)
	}
	rec(0)
}

func (m *Machine) zeroFor(rs []resolvedSub) Value {
	for _, r := range rs {
		if r.isRange {
			return make([]float64, r.hi-r.lo+1)
		}
	}
	return float64(0)
}

func readResolved(name string, arr ArrayAccess, rs []resolvedSub) (Value, error) {
	rangeDim := -1
	for i, r := range rs {
		if r.isRange {
			if rangeDim >= 0 {
				return nil, fmt.Errorf("lang: %s: at most one range subscript supported", name)
			}
			rangeDim = i
		}
	}
	if rangeDim < 0 {
		idx := make([]int64, len(rs))
		for i, r := range rs {
			idx[i] = r.point
		}
		return arr.At(idx...), nil
	}
	r := rs[rangeDim]
	out := make([]float64, r.hi-r.lo+1)
	idx := make([]int64, len(rs))
	for i, s := range rs {
		if i != rangeDim {
			idx[i] = s.point
		}
	}
	for v := r.lo; v <= r.hi; v++ {
		idx[rangeDim] = v
		out[v-r.lo] = arr.At(idx...)
	}
	return out, nil
}

func (m *Machine) writeIndex(x *Index, op string, rhs Value, sc *scope) error {
	// Vector element write: v[i] = ...
	if kv, ok := sc.lookup(x.Base); ok {
		if vec, isVec := kv.([]float64); isVec {
			if len(x.Subs) != 1 {
				return fmt.Errorf("lang: vector takes one subscript")
			}
			i, err := m.evalInt(x.Subs[0], sc)
			if err != nil {
				return err
			}
			if i < 1 || int(i) > len(vec) {
				return fmt.Errorf("lang: vector subscript %d out of range", i)
			}
			f, ok := rhs.(float64)
			if !ok {
				return fmt.Errorf("lang: vector element write needs a scalar")
			}
			if op == "=" {
				vec[i-1] = f
			} else {
				nv, err := applyBin(string(op[0]), vec[i-1], f)
				if err != nil {
					return err
				}
				vec[i-1] = nv.(float64)
			}
			return nil
		}
	}
	// DistArray Buffer write: only delta forms are meaningful, since
	// the buffered value merges later via the apply UDF.
	if buf, ok := m.Buffers[x.Base]; ok {
		if op != "+=" && op != "-=" {
			return fmt.Errorf("lang: DistArray Buffer %q accepts only += and -= writes", x.Base)
		}
		f, ok := rhs.(float64)
		if !ok {
			return fmt.Errorf("lang: buffer write needs a scalar")
		}
		if op == "-=" {
			f = -f
		}
		idx := make([]int64, len(x.Subs))
		for i, sub := range x.Subs {
			v, err := m.evalInt(sub, sc)
			if err != nil {
				return err
			}
			idx[i] = v - 1
		}
		buf.Put(f, idx...)
		return nil
	}
	arr, ok := m.Arrays[x.Base]
	if !ok {
		return fmt.Errorf("lang: write to unknown array %q", x.Base)
	}
	rs, err := m.resolveSubs(x.Base, x.Subs, arr.Dims(), sc)
	if err != nil {
		return err
	}
	if op != "=" {
		cur, err := readResolved(x.Base, arr, rs)
		if err != nil {
			return err
		}
		rhs, err = applyBin(string(op[0]), cur, rhs)
		if err != nil {
			return err
		}
	}
	return writeResolved(x.Base, arr, rs, rhs)
}

func writeResolved(name string, arr ArrayAccess, rs []resolvedSub, v Value) error {
	rangeDim := -1
	for i, r := range rs {
		if r.isRange {
			if rangeDim >= 0 {
				return fmt.Errorf("lang: %s: at most one range subscript supported", name)
			}
			rangeDim = i
		}
	}
	if rangeDim < 0 {
		f, ok := v.(float64)
		if !ok {
			return fmt.Errorf("lang: %s: scalar write needs a scalar value", name)
		}
		idx := make([]int64, len(rs))
		for i, r := range rs {
			idx[i] = r.point
		}
		arr.SetAt(f, idx...)
		return nil
	}
	vec, ok := v.([]float64)
	if !ok {
		return fmt.Errorf("lang: %s: range write needs a vector value", name)
	}
	r := rs[rangeDim]
	if int64(len(vec)) != r.hi-r.lo+1 {
		return fmt.Errorf("lang: %s: vector length %d does not match range %d:%d",
			name, len(vec), r.lo+1, r.hi+1)
	}
	idx := make([]int64, len(rs))
	for i, s := range rs {
		if i != rangeDim {
			idx[i] = s.point
		}
	}
	for off := r.lo; off <= r.hi; off++ {
		idx[rangeDim] = off
		arr.SetAt(vec[off-r.lo], idx...)
	}
	return nil
}

func (m *Machine) eval(e Expr, sc *scope) (Value, error) {
	switch x := e.(type) {
	case *Num:
		return x.Val, nil
	case *Bool:
		return x.Val, nil
	case *Ident:
		v, ok := sc.lookup(x.Name)
		if !ok {
			if arr, isArr := m.Arrays[x.Name]; isArr {
				_ = arr
				return nil, fmt.Errorf("lang: whole-array reference %q not supported in expressions", x.Name)
			}
			return nil, fmt.Errorf("lang: undefined variable %q", x.Name)
		}
		return v, nil
	case *UnOp:
		v, err := m.eval(x.X, sc)
		if err != nil {
			return nil, err
		}
		switch t := v.(type) {
		case float64:
			return -t, nil
		case []float64:
			out := make([]float64, len(t))
			for i, f := range t {
				out[i] = -f
			}
			return out, nil
		default:
			return nil, fmt.Errorf("lang: cannot negate %T", v)
		}
	case *BinOp:
		l, err := m.eval(x.L, sc)
		if err != nil {
			return nil, err
		}
		r, err := m.eval(x.R, sc)
		if err != nil {
			return nil, err
		}
		return applyBin(x.Op, l, r)
	case *Call:
		return m.evalCall(x, sc)
	case *Index:
		return m.readIndex(x, sc)
	default:
		return nil, fmt.Errorf("lang: cannot evaluate %T", e)
	}
}

func (m *Machine) evalCall(c *Call, sc *scope) (Value, error) {
	args := make([]Value, len(c.Args))
	// __record's argument is an Index handled by readIndex with the
	// recorder active; evaluate normally.
	for i, a := range c.Args {
		v, err := m.eval(a, sc)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	want := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("lang: %s takes %d argument(s), got %d", c.Fn, n, len(args))
		}
		return nil
	}
	scalar := func(i int) (float64, error) {
		f, ok := args[i].(float64)
		if !ok {
			return 0, fmt.Errorf("lang: %s: argument %d must be a scalar", c.Fn, i+1)
		}
		return f, nil
	}
	switch c.Fn {
	case "__record":
		return float64(0), nil
	case "rand":
		if err := want(0); err != nil {
			return nil, err
		}
		if m.Rng == nil {
			return nil, fmt.Errorf("lang: rand() requires a Machine with an Rng")
		}
		return m.Rng.Float64(), nil
	case "dot":
		if err := want(2); err != nil {
			return nil, err
		}
		a, okA := args[0].([]float64)
		b, okB := args[1].([]float64)
		if !okA || !okB || len(a) != len(b) {
			return nil, fmt.Errorf("lang: dot needs two equal-length vectors")
		}
		var s float64
		for i := range a {
			s += a[i] * b[i]
		}
		return s, nil
	case "abs2":
		if err := want(1); err != nil {
			return nil, err
		}
		f, err := scalar(0)
		if err != nil {
			return nil, err
		}
		return f * f, nil
	case "abs", "sqrt", "exp", "log", "floor", "ceil", "sigmoid":
		if err := want(1); err != nil {
			return nil, err
		}
		f, err := scalar(0)
		if err != nil {
			return nil, err
		}
		switch c.Fn {
		case "abs":
			return math.Abs(f), nil
		case "sqrt":
			return math.Sqrt(f), nil
		case "exp":
			return math.Exp(f), nil
		case "log":
			return math.Log(f), nil
		case "floor":
			return math.Floor(f), nil
		case "ceil":
			return math.Ceil(f), nil
		default:
			return 1 / (1 + math.Exp(-f)), nil
		}
	case "min", "max":
		if err := want(2); err != nil {
			return nil, err
		}
		a, err := scalar(0)
		if err != nil {
			return nil, err
		}
		b, err := scalar(1)
		if err != nil {
			return nil, err
		}
		if (c.Fn == "min") == (a < b) {
			return a, nil
		}
		return b, nil
	case "length":
		if err := want(1); err != nil {
			return nil, err
		}
		v, ok := args[0].([]float64)
		if !ok {
			return nil, fmt.Errorf("lang: length needs a vector")
		}
		return float64(len(v)), nil
	case "zeros":
		if err := want(1); err != nil {
			return nil, err
		}
		n, err := scalar(0)
		if err != nil {
			return nil, err
		}
		if m.VecLimit > 0 && n > float64(m.VecLimit) {
			return nil, fmt.Errorf("lang: zeros(%g) exceeds the vector length limit %d", n, m.VecLimit)
		}
		return make([]float64, int(n)), nil
	default:
		return nil, fmt.Errorf("lang: unknown function %q", c.Fn)
	}
}

// applyBin applies a binary operator with scalar/vector broadcasting.
func applyBin(op string, l, r Value) (Value, error) {
	lf, lIsF := l.(float64)
	rf, rIsF := r.(float64)
	lv, lIsV := l.([]float64)
	rv, rIsV := r.([]float64)
	switch {
	case lIsF && rIsF:
		switch op {
		case "+":
			return lf + rf, nil
		case "-":
			return lf - rf, nil
		case "*":
			return lf * rf, nil
		case "/":
			return lf / rf, nil
		case "^":
			return math.Pow(lf, rf), nil
		case "==":
			return lf == rf, nil
		case "!=":
			return lf != rf, nil
		case "<":
			return lf < rf, nil
		case "<=":
			return lf <= rf, nil
		case ">":
			return lf > rf, nil
		case ">=":
			return lf >= rf, nil
		}
	case lIsV && rIsV:
		if len(lv) != len(rv) {
			return nil, fmt.Errorf("lang: vector length mismatch %d vs %d", len(lv), len(rv))
		}
		out := make([]float64, len(lv))
		for i := range lv {
			v, err := applyBin(op, lv[i], rv[i])
			if err != nil {
				return nil, err
			}
			f, ok := v.(float64)
			if !ok {
				return nil, fmt.Errorf("lang: vector comparison not supported")
			}
			out[i] = f
		}
		return out, nil
	case lIsV && rIsF:
		out := make([]float64, len(lv))
		for i := range lv {
			v, err := applyBin(op, lv[i], rf)
			if err != nil {
				return nil, err
			}
			out[i] = v.(float64)
		}
		return out, nil
	case lIsF && rIsV:
		out := make([]float64, len(rv))
		for i := range rv {
			v, err := applyBin(op, lf, rv[i])
			if err != nil {
				return nil, err
			}
			out[i] = v.(float64)
		}
		return out, nil
	}
	return nil, fmt.Errorf("lang: cannot apply %q to %T and %T", op, l, r)
}

// flattenIndex converts an index tuple to a row-major-with-fast-first-
// dimension offset, matching dsm.DistArray's layout.
func flattenIndex(dims, idx []int64) int64 {
	var off, stride int64 = 0, 1
	for i := range dims {
		off += idx[i] * stride
		stride *= dims[i]
	}
	return off
}
