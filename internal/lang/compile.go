package lang

import (
	"fmt"
	"math"
	"sort"
)

// This file is the compile-once, run-many backend for DSL loop bodies.
// The tree-walking interpreter (interp.go) re-resolves every name in a
// map, boxes every float in an interface, and allocates fresh scopes,
// key copies, and vectors on every iteration. The compiler instead
// performs a resolution pass that assigns every local, global, array,
// and buffer a fixed integer slot, then lowers the AST bottom-up into
// specialized closures — func(*frame) float64 for float expressions,
// func(*frame) for statements — over a reusable per-kernel frame. On
// the steady state a compiled iteration performs zero allocations.
//
// The interpreter remains the reference semantics: any construct the
// compiler cannot prove it reproduces bit-for-bit (key tuples used as
// values, vector aliasing assignments, statically ill-typed programs
// whose exact runtime error the interpreter defines) is rejected with
// *NotCompilableError and callers fall back to interpretation.
// Differential tests (compile_test.go, fuzz_test.go) hold the two
// backends to bitwise-identical DistArray and accumulator results.

// CompileEnv is the statically known environment a loop is compiled
// against: array extents, buffer targets, and the names of driver
// globals (inherited variables and accumulators).
type CompileEnv struct {
	Arrays  map[string][]int64
	Buffers map[string]string // buffer name -> target array
	Globals []string
}

// NotCompilableError reports that a loop is outside the compiled
// backend's subset; callers should fall back to the interpreter, which
// defines the semantics (including the exact runtime error) for these
// programs.
type NotCompilableError struct {
	Reason string
	At     Pos
}

func (e *NotCompilableError) Error() string {
	return fmt.Sprintf("lang: loop not compilable: %s", e.Reason)
}

// VecAccess is the optional fast-path contract for full-first-dimension
// range reads: a dense array that can hand out a live contiguous
// parameter vector without copying. *dsm.DistArray implements it.
type VecAccess interface {
	ArrayAccess
	IsDense() bool
	Vec(rest ...int64) []float64
}

// kernelFault carries a runtime error out of compiled closures; the
// closures keep allocation-free signatures and RunIteration recovers it
// back into an error. Non-fault panics (array bounds violations, which
// the interpreter also surfaces as panics) propagate unchanged.
type kernelFault struct{ err error }

func fail(format string, args ...interface{}) {
	panic(kernelFault{fmt.Errorf(format, args...)})
}

// frame is the per-kernel mutable state compiled closures execute
// against: one slot array per value kind, bound arrays/buffers, and
// per-node scratch storage reused across iterations.
type frame struct {
	key []int64 // current iteration key (borrowed, read-only)

	fl     []float64 // float locals
	flDef  []bool
	vec    [][]float64 // vector locals (slice headers into node scratch)
	vecDef []bool
	bo     []bool // boolean locals
	boDef  []bool
	gl     []float64 // globals (inherited variables and accumulators)
	glDef  []bool

	arrays  []ArrayAccess
	fast    []VecAccess // non-nil where the dense zero-copy path applies
	buffers []BufferAccess
	rng     RandSource

	scratch [][]float64 // per-vector-node result storage, grown on demand
	idx     [][]int64   // per-access-node subscript storage, fixed arity

	budget   int64 // remaining for-range steps; 0 disables the budget
	vecLimit int64 // max zeros() length; 0 disables the limit
}

// growScratch returns node sid's scratch resized to n, reusing the
// backing array whenever capacity allows. A negative n panics exactly
// like the interpreter's make([]float64, n).
func (f *frame) growScratch(sid, n int) []float64 {
	s := f.scratch[sid]
	if n < 0 || cap(s) < n {
		s = make([]float64, n)
	} else {
		s = s[:n]
	}
	f.scratch[sid] = s
	return s
}

type (
	floatFn func(*frame) float64
	vecFn   func(*frame) []float64
	boolFn  func(*frame) bool
	stmtFn  func(*frame)
)

// vtype is a variable's statically inferred kind.
type vtype uint8

const (
	tNone vtype = iota // not yet known (read would be a runtime error)
	tFloat
	tVec
	tBool
)

func (t vtype) String() string {
	switch t {
	case tFloat:
		return "scalar"
	case tVec:
		return "vector"
	case tBool:
		return "boolean"
	}
	return "undefined"
}

// vecMode says how a vector expression's result will be used, which
// decides whether a live or borrowed slice may be returned.
type vecMode int

const (
	// vecConsume: the result is read element-wise into separate storage
	// before any array write can occur (builtin/operator operands).
	// Live array views and variable slots may be returned directly.
	vecConsume vecMode = iota
	// vecStore: the result is stored in a variable slot; it must be
	// uniquely owned scratch (the interpreter allocates fresh vectors,
	// so a stored result never aliases an array or another variable).
	vecStore
	// vecWrite: the result is written into an array range; it must not
	// alias any array (overlapping in-place range copies would diverge
	// from the interpreter's copy-then-write), but variable slots are
	// fine.
	vecWrite
)

type compiler struct {
	loop *Loop
	env  *CompileEnv

	types   map[string]vtype
	changed bool
	strict  bool

	globalIx    map[string]int
	globalNames []string
	arrayIx     map[string]int
	arrayNames  []string
	arrayDims   [][]int64
	bufIx       map[string]int
	bufNames    []string

	floatIx map[string]int
	vecIx   map[string]int
	boolIx  map[string]int

	nScratch int
	idxSizes []int
}

func (c *compiler) nc(at Pos, format string, args ...interface{}) {
	panic(&NotCompilableError{Reason: fmt.Sprintf(format, args...), At: at})
}

func (c *compiler) newScratch() int {
	id := c.nScratch
	c.nScratch++
	return id
}

func (c *compiler) newIdx(n int) int {
	c.idxSizes = append(c.idxSizes, n)
	return len(c.idxSizes) - 1
}

// CompiledLoop is a loop lowered to closures. It is immutable and safe
// to share; each executor obtains its own mutable state via NewKernel.
type CompiledLoop struct {
	loop *Loop

	numFloat, numVec, numBool int
	valSlot                   int // ValVar's float slot, -1 when absent

	globalIx    map[string]int
	globalNames []string
	arrayIx     map[string]int
	arrayNames  []string
	arrayDims   [][]int64
	bufIx       map[string]int
	bufNames    []string

	nScratch int
	idxSizes []int

	body stmtFn
}

// Loop returns the compiled loop's AST.
func (cl *CompiledLoop) Loop() *Loop { return cl.loop }

// CompileLoop lowers a loop body to closures against the given
// environment. It returns *NotCompilableError when the loop is outside
// the compiled subset; run it on the interpreter instead.
func CompileLoop(loop *Loop, env *CompileEnv) (cl *CompiledLoop, err error) {
	defer func() {
		if r := recover(); r != nil {
			if nce, ok := r.(*NotCompilableError); ok {
				cl, err = nil, nce
				return
			}
			panic(r)
		}
	}()
	c := &compiler{loop: loop, env: env, types: map[string]vtype{}}
	c.setup()
	c.infer()
	c.assignSlots()
	body := c.compileStmts(loop.Body)
	return &CompiledLoop{
		loop:        loop,
		numFloat:    len(c.floatIx),
		numVec:      len(c.vecIx),
		numBool:     len(c.boolIx),
		valSlot:     c.valSlot(),
		globalIx:    c.globalIx,
		globalNames: c.globalNames,
		arrayIx:     c.arrayIx,
		arrayNames:  c.arrayNames,
		arrayDims:   c.arrayDims,
		bufIx:       c.bufIx,
		bufNames:    c.bufNames,
		nScratch:    c.nScratch,
		idxSizes:    c.idxSizes,
		body:        body,
	}, nil
}

func (c *compiler) valSlot() int {
	if c.loop.ValVar == "" {
		return -1
	}
	return c.floatIx[c.loop.ValVar]
}

// setup assigns array/buffer/global slots and rejects name collisions
// whose dynamic shadowing behavior the interpreter defines.
func (c *compiler) setup() {
	l := c.loop
	c.arrayIx = map[string]int{}
	names := make([]string, 0, len(c.env.Arrays))
	for n := range c.env.Arrays {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		c.arrayIx[n] = len(c.arrayNames)
		c.arrayNames = append(c.arrayNames, n)
		c.arrayDims = append(c.arrayDims, append([]int64(nil), c.env.Arrays[n]...))
	}
	c.bufIx = map[string]int{}
	names = names[:0]
	for n := range c.env.Buffers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, dup := c.arrayIx[n]; dup {
			c.nc(l.At, "name %q is both an array and a buffer", n)
		}
		c.bufIx[n] = len(c.bufNames)
		c.bufNames = append(c.bufNames, n)
	}
	c.globalIx = map[string]int{}
	for _, n := range c.env.Globals {
		if _, dup := c.globalIx[n]; dup {
			continue
		}
		if _, isArr := c.arrayIx[n]; isArr {
			c.nc(l.At, "name %q is both a global and an array", n)
		}
		c.globalIx[n] = len(c.globalNames)
		c.globalNames = append(c.globalNames, n)
	}

	if _, ok := c.globalIx[l.KeyVar]; ok {
		c.nc(l.At, "key variable %q shadows a global", l.KeyVar)
	}
	if _, ok := c.arrayIx[l.KeyVar]; ok {
		c.nc(l.At, "key variable %q shadows an array", l.KeyVar)
	}
	if l.ValVar != "" {
		if l.ValVar == l.KeyVar {
			c.nc(l.At, "key and value variables share the name %q", l.KeyVar)
		}
		if _, ok := c.globalIx[l.ValVar]; ok {
			c.nc(l.At, "value variable %q shadows a global", l.ValVar)
		}
		c.types[l.ValVar] = tFloat
	}

	// Assigned local names must not collide with arrays, buffers, or
	// the key: the interpreter resolves such names dynamically per
	// definedness, which the static slot scheme does not model.
	assigned := map[string]Pos{}
	var walk func(body []Stmt)
	walk = func(body []Stmt) {
		for _, st := range body {
			switch s := st.(type) {
			case *Assign:
				if id, ok := s.Target.(*Ident); ok {
					if _, g := c.globalIx[id.Name]; !g {
						assigned[id.Name] = id.At
					}
				}
			case *If:
				walk(s.Then)
				walk(s.Else)
			case *ForRange:
				if _, g := c.globalIx[s.Var]; g {
					c.nc(s.At, "inner loop variable %q shadows a global", s.Var)
				}
				assigned[s.Var] = s.At
				walk(s.Body)
			}
		}
	}
	walk(l.Body)
	for name, at := range assigned {
		if name == l.KeyVar {
			c.nc(at, "assignment to the key variable %q", name)
		}
		if _, isArr := c.arrayIx[name]; isArr {
			c.nc(at, "local variable %q shadows an array", name)
		}
		if _, isBuf := c.bufIx[name]; isBuf {
			c.nc(at, "local variable %q shadows a buffer", name)
		}
	}
	// Names collected for checks above also collide with ValVar checks
	// implicitly: ValVar is an ordinary float local.
	if _, isArr := c.arrayIx[l.ValVar]; l.ValVar != "" && isArr {
		c.nc(l.At, "value variable %q shadows an array", l.ValVar)
	}
	if _, isBuf := c.bufIx[l.ValVar]; l.ValVar != "" && isBuf {
		c.nc(l.At, "value variable %q shadows a buffer", l.ValVar)
	}
}

// infer runs type inference to a fixpoint, then a strict pass that
// rejects anything still untyped or statically ill-typed.
func (c *compiler) infer() {
	for i := 0; ; i++ {
		c.changed = false
		c.inferStmts(c.loop.Body)
		if !c.changed {
			break
		}
		if i > len(c.types)+8 {
			c.nc(c.loop.At, "type inference did not converge")
		}
	}
	c.strict = true
	c.inferStmts(c.loop.Body)
}

func (c *compiler) assignSlots() {
	names := make([]string, 0, len(c.types))
	for n := range c.types {
		names = append(names, n)
	}
	sort.Strings(names)
	c.floatIx = map[string]int{}
	c.vecIx = map[string]int{}
	c.boolIx = map[string]int{}
	for _, n := range names {
		switch c.types[n] {
		case tFloat:
			c.floatIx[n] = len(c.floatIx)
		case tVec:
			c.vecIx[n] = len(c.vecIx)
		case tBool:
			c.boolIx[n] = len(c.boolIx)
		}
	}
}

// binResult types op over (l, r), mirroring applyBin's broadcasting.
func (c *compiler) binResult(op string, at Pos, l, r vtype) vtype {
	if l == tNone || r == tNone {
		if c.strict {
			c.nc(at, "operand of %q has no inferable type", op)
		}
		return tNone
	}
	switch op {
	case "+", "-", "*", "/", "^":
		switch {
		case l == tFloat && r == tFloat:
			return tFloat
		case l == tVec && (r == tVec || r == tFloat):
			return tVec
		case l == tFloat && r == tVec:
			return tVec
		}
		c.nc(at, "cannot apply %q to %s and %s", op, l, r)
	case "==", "!=", "<", "<=", ">", ">=":
		if l == tFloat && r == tFloat {
			return tBool
		}
		c.nc(at, "comparison %q needs scalar operands, got %s and %s", op, l, r)
	}
	c.nc(at, "unsupported operator %q", op)
	return tNone
}

func (c *compiler) inferExpr(e Expr) vtype {
	switch x := e.(type) {
	case *Num:
		return tFloat
	case *Bool:
		return tBool
	case *Ident:
		if x.Name == c.loop.KeyVar {
			c.nc(x.At, "key tuple %q used as a value", x.Name)
		}
		if t, ok := c.types[x.Name]; ok {
			if t == tNone && c.strict {
				c.nc(x.At, "variable %q has no inferable type", x.Name)
			}
			return t
		}
		if _, ok := c.globalIx[x.Name]; ok {
			return tFloat
		}
		if _, ok := c.arrayIx[x.Name]; ok {
			c.nc(x.At, "whole-array reference %q", x.Name)
		}
		if c.strict {
			c.nc(x.At, "read of undefined variable %q", x.Name)
		}
		c.types[x.Name] = tNone
		return tNone
	case *UnOp:
		t := c.inferExpr(x.X)
		if t == tFloat || t == tVec || t == tNone {
			return t
		}
		c.nc(x.At, "cannot negate a %s", t)
	case *BinOp:
		l := c.inferExpr(x.L)
		r := c.inferExpr(x.R)
		return c.binResult(x.Op, x.At, l, r)
	case *Call:
		return c.inferCall(x)
	case *Index:
		return c.inferIndex(x, false)
	case *RangeExpr:
		c.nc(x.At, "range expression outside a subscript")
	}
	c.nc(c.loop.At, "unsupported expression %T", e)
	return tNone
}

func (c *compiler) inferCall(x *Call) vtype {
	args := make([]vtype, len(x.Args))
	none := false
	for i, a := range x.Args {
		args[i] = c.inferExpr(a)
		if args[i] == tNone {
			none = true
		}
	}
	want := func(n int) {
		if len(args) != n {
			c.nc(x.At, "%s takes %d argument(s), got %d", x.Fn, n, len(args))
		}
	}
	if none {
		// Strict passes already rejected tNone inside inferExpr.
		return tNone
	}
	switch x.Fn {
	case "rand":
		want(0)
		return tFloat
	case "dot":
		want(2)
		if args[0] != tVec || args[1] != tVec {
			c.nc(x.At, "dot needs two vectors")
		}
		return tFloat
	case "abs", "abs2", "sqrt", "exp", "log", "floor", "ceil", "sigmoid":
		want(1)
		if args[0] != tFloat {
			c.nc(x.At, "%s needs a scalar argument", x.Fn)
		}
		return tFloat
	case "min", "max":
		want(2)
		if args[0] != tFloat || args[1] != tFloat {
			c.nc(x.At, "%s needs scalar arguments", x.Fn)
		}
		return tFloat
	case "length":
		want(1)
		if args[0] != tVec {
			c.nc(x.At, "length needs a vector")
		}
		return tFloat
	case "zeros":
		want(1)
		if args[0] != tFloat {
			c.nc(x.At, "zeros needs a scalar length")
		}
		return tVec
	}
	c.nc(x.At, "unsupported function %q", x.Fn)
	return tNone
}

// inferIndex types base[subs...] for reads (write=false) and validates
// the subscript shapes shared with writes.
func (c *compiler) inferIndex(x *Index, write bool) vtype {
	sub1 := func() vtype {
		if len(x.Subs) != 1 {
			c.nc(x.At, "%q takes one subscript", x.Base)
		}
		if _, isRange := x.Subs[0].(*RangeExpr); isRange {
			c.nc(x.At, "range subscript on %q", x.Base)
		}
		t := c.inferExpr(x.Subs[0])
		if t != tFloat && t != tNone {
			c.nc(x.At, "subscript of %q is not a number", x.Base)
		}
		return t
	}
	if x.Base == c.loop.KeyVar {
		if write {
			c.nc(x.At, "write through the key tuple %q", x.Base)
		}
		sub1()
		return tFloat
	}
	if t, isLocal := c.types[x.Base]; isLocal {
		switch t {
		case tVec:
			sub1()
			return tFloat
		case tNone:
			if c.strict {
				c.nc(x.At, "variable %q has no inferable type", x.Base)
			}
			return tNone
		default:
			c.nc(x.At, "subscript of %s variable %q", t, x.Base)
		}
	}
	if _, isBuf := c.bufIx[x.Base]; isBuf {
		if !write {
			c.nc(x.At, "read through buffer %q", x.Base)
		}
		// Buffer writes take point subscripts of any arity (the
		// interpreter performs no arity check against the target).
		for _, sub := range x.Subs {
			if _, isRange := sub.(*RangeExpr); isRange {
				c.nc(x.At, "range subscript in buffer write %q", x.Base)
			}
			if t := c.inferExpr(sub); t != tFloat && t != tNone {
				c.nc(x.At, "subscript of %q is not a number", x.Base)
			}
		}
		return tFloat
	}
	ai, isArr := c.arrayIx[x.Base]
	if !isArr {
		if _, isGlobal := c.globalIx[x.Base]; isGlobal {
			c.nc(x.At, "subscript of scalar global %q", x.Base)
		}
		c.nc(x.At, "subscript of unknown name %q", x.Base)
	}
	dims := c.arrayDims[ai]
	if len(x.Subs) != len(dims) {
		c.nc(x.At, "%s: %d subscripts for %d dims", x.Base, len(x.Subs), len(dims))
	}
	ranges := 0
	for _, sub := range x.Subs {
		if r, isRange := sub.(*RangeExpr); isRange {
			ranges++
			if !r.Full {
				if t := c.inferExpr(r.Lo); t != tFloat && t != tNone {
					c.nc(x.At, "range bound of %q is not a number", x.Base)
				}
				if t := c.inferExpr(r.Hi); t != tFloat && t != tNone {
					c.nc(x.At, "range bound of %q is not a number", x.Base)
				}
			}
			continue
		}
		if t := c.inferExpr(sub); t != tFloat && t != tNone {
			c.nc(x.At, "subscript of %q is not a number", x.Base)
		}
	}
	switch ranges {
	case 0:
		return tFloat
	case 1:
		return tVec
	}
	c.nc(x.At, "%s: more than one range subscript", x.Base)
	return tNone
}

func (c *compiler) setLocalType(name string, at Pos, t vtype) {
	if t == tNone {
		if c.strict {
			c.nc(at, "variable %q has no inferable type", name)
		}
		if _, seen := c.types[name]; !seen {
			c.types[name] = tNone
			c.changed = true
		}
		return
	}
	cur, seen := c.types[name]
	if !seen || cur == tNone {
		c.types[name] = t
		c.changed = true
		return
	}
	if cur != t {
		c.nc(at, "variable %q assigned both %s and %s values", name, cur, t)
	}
}

func (c *compiler) inferStmts(body []Stmt) {
	for _, st := range body {
		switch s := st.(type) {
		case *Assign:
			c.inferAssign(s)
		case *If:
			t := c.inferExpr(s.Cond)
			if t != tBool && t != tNone {
				c.nc(s.At, "if condition is not boolean")
			}
			c.inferStmts(s.Then)
			c.inferStmts(s.Else)
		case *ForRange:
			for _, b := range []Expr{s.Lo, s.Hi} {
				if t := c.inferExpr(b); t != tFloat && t != tNone {
					c.nc(s.At, "loop bound is not a number")
				}
			}
			c.setLocalType(s.Var, s.At, tFloat)
			c.inferStmts(s.Body)
		case *ExprStmt:
			c.inferExpr(s.X)
		default:
			c.nc(c.loop.At, "unsupported statement %T", st)
		}
	}
}

func (c *compiler) inferAssign(s *Assign) {
	rhs := c.inferExpr(s.Value)
	switch t := s.Target.(type) {
	case *Ident:
		if t.Name == c.loop.KeyVar {
			c.nc(t.At, "assignment to the key variable %q", t.Name)
		}
		if _, isGlobal := c.globalIx[t.Name]; isGlobal {
			if rhs == tNone {
				return
			}
			if rhs != tFloat {
				c.nc(t.At, "global %q assigned a %s value", t.Name, rhs)
			}
			return
		}
		if s.Op == "=" {
			if rhs == tVec {
				if _, alias := s.Value.(*Ident); alias {
					c.nc(t.At, "vector aliasing assignment %q = %q", t.Name, s.Value)
				}
			}
			c.setLocalType(t.Name, t.At, rhs)
			return
		}
		cur := c.types[t.Name]
		if cur == tNone || rhs == tNone {
			if c.strict {
				c.nc(t.At, "%s of variable %q with no inferable type", s.Op, t.Name)
			}
			return
		}
		if res := c.binResult(string(s.Op[0]), t.At, cur, rhs); res != cur {
			c.nc(t.At, "%s changes %q from %s to %s", s.Op, t.Name, cur, res)
		}
	case *Index:
		targetT := c.inferIndex(t, true)
		if rhs == tNone || targetT == tNone {
			if c.strict {
				c.nc(t.At, "assignment through %q has no inferable type", t.Base)
			}
			return
		}
		if _, isBuf := c.bufIx[t.Base]; isBuf {
			if s.Op != "+=" && s.Op != "-=" {
				c.nc(t.At, "DistArray Buffer %q accepts only += and -= writes", t.Base)
			}
			if rhs != tFloat {
				c.nc(t.At, "buffer write needs a scalar")
			}
			return
		}
		if targetT == tFloat {
			// Point write (array element, vector element, key — key
			// writes were rejected in inferIndex).
			if rhs != tFloat {
				c.nc(t.At, "scalar write to %q needs a scalar value", t.Base)
			}
			return
		}
		// Range write.
		if s.Op == "=" {
			if rhs != tVec {
				c.nc(t.At, "range write to %q needs a vector value", t.Base)
			}
			return
		}
		if res := c.binResult(string(s.Op[0]), t.At, tVec, rhs); res != tVec {
			c.nc(t.At, "range update to %q is not a vector", t.Base)
		}
	default:
		c.nc(s.At, "bad assignment target %s", s.Target)
	}
}

// --- lowering ---

func arithFn(op byte) func(a, b float64) float64 {
	switch op {
	case '+':
		return func(a, b float64) float64 { return a + b }
	case '-':
		return func(a, b float64) float64 { return a - b }
	case '*':
		return func(a, b float64) float64 { return a * b }
	case '/':
		return func(a, b float64) float64 { return a / b }
	case '^':
		return math.Pow
	}
	return nil
}

func (c *compiler) compileStmts(body []Stmt) stmtFn {
	if len(body) == 0 {
		return func(*frame) {}
	}
	fns := make([]stmtFn, len(body))
	for i, st := range body {
		fns[i] = c.compileStmt(st)
	}
	if len(fns) == 1 {
		return fns[0]
	}
	return func(f *frame) {
		for _, fn := range fns {
			fn(f)
		}
	}
}

func (c *compiler) compileStmt(st Stmt) stmtFn {
	switch s := st.(type) {
	case *Assign:
		return c.compileAssign(s)
	case *If:
		cond := c.compileBool(s.Cond)
		then := c.compileStmts(s.Then)
		els := c.compileStmts(s.Else)
		return func(f *frame) {
			if cond(f) {
				then(f)
			} else {
				els(f)
			}
		}
	case *ForRange:
		lo := c.compileFloat(s.Lo)
		hi := c.compileFloat(s.Hi)
		slot := c.floatIx[s.Var]
		body := c.compileStmts(s.Body)
		return func(f *frame) {
			l, h := int64(lo(f)), int64(hi(f))
			for v := l; v <= h; v++ {
				if f.budget != 0 {
					f.budget--
					if f.budget == 0 {
						fail("lang: step budget exhausted")
					}
				}
				f.fl[slot] = float64(v)
				f.flDef[slot] = true
				body(f)
			}
		}
	case *ExprStmt:
		switch c.inferExpr(s.X) {
		case tVec:
			e := c.compileVec(s.X, vecConsume)
			return func(f *frame) { e(f) }
		case tBool:
			e := c.compileBool(s.X)
			return func(f *frame) { e(f) }
		default:
			e := c.compileFloat(s.X)
			return func(f *frame) { e(f) }
		}
	}
	c.nc(c.loop.At, "unsupported statement %T", st)
	return nil
}

func (c *compiler) compileAssign(s *Assign) stmtFn {
	switch t := s.Target.(type) {
	case *Ident:
		return c.compileIdentAssign(s, t)
	case *Index:
		if slot, isVec := c.vecIx[t.Base]; isVec && t.Base != c.loop.KeyVar {
			return c.compileVecElemAssign(s, t, slot)
		}
		if bi, isBuf := c.bufIx[t.Base]; isBuf {
			return c.compileBufferWrite(s, t, bi)
		}
		return c.compileArrayWrite(s, t)
	}
	c.nc(s.At, "bad assignment target %s", s.Target)
	return nil
}

func (c *compiler) compileIdentAssign(s *Assign, t *Ident) stmtFn {
	name := t.Name
	if gs, isGlobal := c.globalIx[name]; isGlobal {
		rhs := c.compileFloat(s.Value)
		if s.Op == "=" {
			return func(f *frame) {
				f.gl[gs] = rhs(f)
				f.glDef[gs] = true
			}
		}
		op, opName := arithFn(s.Op[0]), s.Op
		return func(f *frame) {
			v := rhs(f)
			if !f.glDef[gs] {
				fail("lang: %s of undefined variable %q", opName, name)
			}
			f.gl[gs] = op(f.gl[gs], v)
		}
	}
	switch c.types[name] {
	case tFloat:
		slot := c.floatIx[name]
		rhs := c.compileFloat(s.Value)
		if s.Op == "=" {
			return func(f *frame) {
				f.fl[slot] = rhs(f)
				f.flDef[slot] = true
			}
		}
		op, opName := arithFn(s.Op[0]), s.Op
		return func(f *frame) {
			v := rhs(f)
			if !f.flDef[slot] {
				fail("lang: %s of undefined variable %q", opName, name)
			}
			f.fl[slot] = op(f.fl[slot], v)
		}
	case tBool:
		if s.Op != "=" {
			c.nc(s.At, "compound assignment to boolean %q", name)
		}
		slot := c.boolIx[name]
		rhs := c.compileBool(s.Value)
		return func(f *frame) {
			f.bo[slot] = rhs(f)
			f.boDef[slot] = true
		}
	case tVec:
		slot := c.vecIx[name]
		if s.Op == "=" {
			rhs := c.compileVec(s.Value, vecStore)
			return func(f *frame) {
				f.vec[slot] = rhs(f)
				f.vecDef[slot] = true
			}
		}
		op, opName := arithFn(s.Op[0]), s.Op
		sid := c.newScratch()
		if c.inferExpr(s.Value) == tFloat {
			rhs := c.compileFloat(s.Value)
			return func(f *frame) {
				v := rhs(f)
				if !f.vecDef[slot] {
					fail("lang: %s of undefined variable %q", opName, name)
				}
				cur := f.vec[slot]
				out := f.growScratch(sid, len(cur))
				for i := range cur {
					out[i] = op(cur[i], v)
				}
				f.vec[slot] = out
			}
		}
		rhs := c.compileVec(s.Value, vecConsume)
		return func(f *frame) {
			rv := rhs(f)
			if !f.vecDef[slot] {
				fail("lang: %s of undefined variable %q", opName, name)
			}
			cur := f.vec[slot]
			if len(cur) != len(rv) {
				fail("lang: vector length mismatch %d vs %d", len(cur), len(rv))
			}
			out := f.growScratch(sid, len(cur))
			for i := range cur {
				out[i] = op(cur[i], rv[i])
			}
			f.vec[slot] = out
		}
	}
	c.nc(s.At, "assignment to %q has no inferable type", name)
	return nil
}

// compileVecElemAssign lowers v[i] op= rhs for a vector local.
func (c *compiler) compileVecElemAssign(s *Assign, t *Index, slot int) stmtFn {
	base := t.Base
	rhs := c.compileFloat(s.Value)
	sub := c.compileFloat(t.Subs[0])
	var op func(a, b float64) float64
	if s.Op != "=" {
		op = arithFn(s.Op[0])
	}
	return func(f *frame) {
		v := rhs(f)
		if !f.vecDef[slot] {
			// The interpreter's lookup misses and the write falls
			// through to the (absent) array table.
			fail("lang: write to unknown array %q", base)
		}
		i := int64(sub(f))
		vec := f.vec[slot]
		if i < 1 || int(i) > len(vec) {
			fail("lang: vector subscript %d out of range", i)
		}
		if op == nil {
			vec[i-1] = v
		} else {
			vec[i-1] = op(vec[i-1], v)
		}
	}
}

func (c *compiler) compileBufferWrite(s *Assign, t *Index, bi int) stmtFn {
	base := t.Base
	rhs := c.compileFloat(s.Value)
	neg := s.Op == "-="
	subs := make([]floatFn, len(t.Subs))
	for i, sub := range t.Subs {
		subs[i] = c.compileFloat(sub)
	}
	ii := c.newIdx(len(subs))
	return func(f *frame) {
		v := rhs(f)
		b := f.buffers[bi]
		if b == nil {
			fail("lang: write to unknown array %q", base)
		}
		if neg {
			v = -v
		}
		ix := f.idx[ii]
		for d, sf := range subs {
			ix[d] = int64(sf(f)) - 1
		}
		b.Put(v, ix...)
	}
}

// rangeShape is the static shape of an array subscript list with at
// most one range.
type rangeShape struct {
	rank     int
	rangeDim int // -1 when all subscripts are points
	full     bool
	points   []floatFn // nil entries at rangeDim
	lo, hi   floatFn   // partial-range bounds
	extent   int64     // dims[rangeDim] for full ranges
}

func (c *compiler) subShape(x *Index, ai int) rangeShape {
	dims := c.arrayDims[ai]
	sh := rangeShape{rank: len(dims), rangeDim: -1, points: make([]floatFn, len(dims))}
	for i, sub := range x.Subs {
		if r, isRange := sub.(*RangeExpr); isRange {
			sh.rangeDim = i
			sh.full = r.Full
			if r.Full {
				sh.extent = dims[i]
			} else {
				sh.lo = c.compileFloat(r.Lo)
				sh.hi = c.compileFloat(r.Hi)
			}
			continue
		}
		sh.points[i] = c.compileFloat(sub)
	}
	return sh
}

// resolve evaluates the subscripts in source order into ix (0-based)
// and returns the 0-based inclusive range bounds (0,0 when pointwise).
func (sh *rangeShape) resolve(f *frame, ix []int64) (lo, hi int64) {
	for d := 0; d < sh.rank; d++ {
		if d == sh.rangeDim {
			if sh.full {
				lo, hi = 0, sh.extent-1
			} else {
				lo = int64(sh.lo(f)) - 1
				hi = int64(sh.hi(f)) - 1
			}
			continue
		}
		ix[d] = int64(sh.points[d](f)) - 1
	}
	return lo, hi
}

func (c *compiler) compileArrayWrite(s *Assign, t *Index) stmtFn {
	base := t.Base
	ai, isArr := c.arrayIx[base]
	if !isArr {
		c.nc(t.At, "write to unknown array %q", base)
	}
	sh := c.subShape(t, ai)
	ii := c.newIdx(sh.rank)
	if sh.rangeDim < 0 {
		rhs := c.compileFloat(s.Value)
		var op func(a, b float64) float64
		if s.Op != "=" {
			op = arithFn(s.Op[0])
		}
		return func(f *frame) {
			v := rhs(f)
			a := f.arrays[ai]
			if a == nil {
				fail("lang: write to unknown array %q", base)
			}
			ix := f.idx[ii]
			sh.resolve(f, ix)
			if op != nil {
				v = op(a.At(ix...), v)
			}
			a.SetAt(v, ix...)
		}
	}
	rd := sh.rangeDim
	if s.Op == "=" {
		rhs := c.compileVec(s.Value, vecWrite)
		return func(f *frame) {
			rv := rhs(f)
			a := f.arrays[ai]
			if a == nil {
				fail("lang: write to unknown array %q", base)
			}
			ix := f.idx[ii]
			lo, hi := sh.resolve(f, ix)
			if int64(len(rv)) != hi-lo+1 {
				fail("lang: %s: vector length %d does not match range %d:%d",
					base, len(rv), lo+1, hi+1)
			}
			for v := lo; v <= hi; v++ {
				ix[rd] = v
				a.SetAt(rv[v-lo], ix...)
			}
		}
	}
	op := arithFn(s.Op[0])
	curSid := c.newScratch()
	if c.inferExpr(s.Value) == tFloat {
		rhs := c.compileFloat(s.Value)
		return func(f *frame) {
			rv := rhs(f)
			a := f.arrays[ai]
			if a == nil {
				fail("lang: write to unknown array %q", base)
			}
			ix := f.idx[ii]
			lo, hi := sh.resolve(f, ix)
			cur := f.growScratch(curSid, int(hi-lo+1))
			for v := lo; v <= hi; v++ {
				ix[rd] = v
				cur[v-lo] = a.At(ix...)
			}
			for i := range cur {
				cur[i] = op(cur[i], rv)
			}
			for v := lo; v <= hi; v++ {
				ix[rd] = v
				a.SetAt(cur[v-lo], ix...)
			}
		}
	}
	rhs := c.compileVec(s.Value, vecWrite)
	return func(f *frame) {
		rv := rhs(f)
		a := f.arrays[ai]
		if a == nil {
			fail("lang: write to unknown array %q", base)
		}
		ix := f.idx[ii]
		lo, hi := sh.resolve(f, ix)
		cur := f.growScratch(curSid, int(hi-lo+1))
		for v := lo; v <= hi; v++ {
			ix[rd] = v
			cur[v-lo] = a.At(ix...)
		}
		if len(cur) != len(rv) {
			fail("lang: vector length mismatch %d vs %d", len(cur), len(rv))
		}
		for i := range cur {
			cur[i] = op(cur[i], rv[i])
		}
		for v := lo; v <= hi; v++ {
			ix[rd] = v
			a.SetAt(cur[v-lo], ix...)
		}
	}
}

func (c *compiler) compileFloat(e Expr) floatFn {
	switch x := e.(type) {
	case *Num:
		v := x.Val
		return func(*frame) float64 { return v }
	case *Ident:
		name := x.Name
		if gs, isGlobal := c.globalIx[name]; isGlobal {
			if _, isLocal := c.types[name]; !isLocal {
				return func(f *frame) float64 {
					if !f.glDef[gs] {
						fail("lang: undefined variable %q", name)
					}
					return f.gl[gs]
				}
			}
		}
		slot := c.floatIx[name]
		return func(f *frame) float64 {
			if !f.flDef[slot] {
				fail("lang: undefined variable %q", name)
			}
			return f.fl[slot]
		}
	case *UnOp:
		v := c.compileFloat(x.X)
		return func(f *frame) float64 { return -v(f) }
	case *BinOp:
		l := c.compileFloat(x.L)
		r := c.compileFloat(x.R)
		switch x.Op {
		case "+":
			return func(f *frame) float64 { return l(f) + r(f) }
		case "-":
			return func(f *frame) float64 { return l(f) - r(f) }
		case "*":
			return func(f *frame) float64 { return l(f) * r(f) }
		case "/":
			return func(f *frame) float64 { return l(f) / r(f) }
		case "^":
			return func(f *frame) float64 { return math.Pow(l(f), r(f)) }
		}
		c.nc(x.At, "operator %q is not a scalar operator", x.Op)
	case *Call:
		return c.compileFloatCall(x)
	case *Index:
		return c.compileFloatIndex(x)
	}
	c.nc(c.loop.At, "unsupported scalar expression %T", e)
	return nil
}

func (c *compiler) compileFloatCall(x *Call) floatFn {
	switch x.Fn {
	case "rand":
		return func(f *frame) float64 {
			if f.rng == nil {
				fail("lang: rand() requires a Machine with an Rng")
			}
			return f.rng.Float64()
		}
	case "dot":
		a := c.compileVec(x.Args[0], vecConsume)
		b := c.compileVec(x.Args[1], vecConsume)
		return func(f *frame) float64 {
			av := a(f)
			bv := b(f)
			if len(av) != len(bv) {
				fail("lang: dot needs two equal-length vectors")
			}
			var s float64
			for i := range av {
				s += av[i] * bv[i]
			}
			return s
		}
	case "length":
		v := c.compileVec(x.Args[0], vecConsume)
		return func(f *frame) float64 { return float64(len(v(f))) }
	case "min", "max":
		a := c.compileFloat(x.Args[0])
		b := c.compileFloat(x.Args[1])
		isMin := x.Fn == "min"
		return func(f *frame) float64 {
			av, bv := a(f), b(f)
			if isMin == (av < bv) {
				return av
			}
			return bv
		}
	case "abs", "abs2", "sqrt", "exp", "log", "floor", "ceil", "sigmoid":
		arg := c.compileFloat(x.Args[0])
		switch x.Fn {
		case "abs":
			return func(f *frame) float64 { return math.Abs(arg(f)) }
		case "abs2":
			return func(f *frame) float64 { v := arg(f); return v * v }
		case "sqrt":
			return func(f *frame) float64 { return math.Sqrt(arg(f)) }
		case "exp":
			return func(f *frame) float64 { return math.Exp(arg(f)) }
		case "log":
			return func(f *frame) float64 { return math.Log(arg(f)) }
		case "floor":
			return func(f *frame) float64 { return math.Floor(arg(f)) }
		case "ceil":
			return func(f *frame) float64 { return math.Ceil(arg(f)) }
		default:
			return func(f *frame) float64 { return 1 / (1 + math.Exp(-arg(f))) }
		}
	}
	c.nc(x.At, "unsupported function %q", x.Fn)
	return nil
}

func (c *compiler) compileFloatIndex(x *Index) floatFn {
	base := x.Base
	if base == c.loop.KeyVar {
		sub := c.compileFloat(x.Subs[0])
		return func(f *frame) float64 {
			k := int64(sub(f))
			if k < 1 || int(k) > len(f.key) {
				fail("lang: key subscript %d out of range", k)
			}
			// DSL coordinates are 1-based.
			return float64(f.key[k-1] + 1)
		}
	}
	if slot, isVec := c.vecIx[base]; isVec {
		sub := c.compileFloat(x.Subs[0])
		return func(f *frame) float64 {
			if !f.vecDef[slot] {
				// The interpreter's lookup misses and the read falls
				// through to the (absent) array table.
				fail("lang: read of unknown array %q", base)
			}
			i := int64(sub(f))
			vec := f.vec[slot]
			if i < 1 || int(i) > len(vec) {
				fail("lang: vector subscript %d out of range", i)
			}
			return vec[i-1]
		}
	}
	ai, isArr := c.arrayIx[base]
	if !isArr {
		c.nc(x.At, "read of unknown array %q", base)
	}
	sh := c.subShape(x, ai)
	ii := c.newIdx(sh.rank)
	return func(f *frame) float64 {
		a := f.arrays[ai]
		if a == nil {
			fail("lang: read of unknown array %q", base)
		}
		ix := f.idx[ii]
		sh.resolve(f, ix)
		return a.At(ix...)
	}
}

func (c *compiler) compileVec(e Expr, mode vecMode) vecFn {
	switch x := e.(type) {
	case *Ident:
		name := x.Name
		if mode == vecStore {
			c.nc(x.At, "vector aliasing assignment from %q", name)
		}
		slot := c.vecIx[name]
		return func(f *frame) []float64 {
			if !f.vecDef[slot] {
				fail("lang: undefined variable %q", name)
			}
			return f.vec[slot]
		}
	case *UnOp:
		src := c.compileVec(x.X, vecConsume)
		sid := c.newScratch()
		return func(f *frame) []float64 {
			v := src(f)
			out := f.growScratch(sid, len(v))
			for i, e := range v {
				out[i] = -e
			}
			return out
		}
	case *BinOp:
		return c.compileVecBin(x)
	case *Call:
		// zeros is the only vector-valued builtin.
		n := c.compileFloat(x.Args[0])
		sid := c.newScratch()
		return func(f *frame) []float64 {
			nf := n(f)
			if f.vecLimit > 0 && nf > float64(f.vecLimit) {
				fail("lang: zeros(%g) exceeds the vector length limit %d", nf, f.vecLimit)
			}
			out := f.growScratch(sid, int(nf))
			for i := range out {
				out[i] = 0
			}
			return out
		}
	case *Index:
		return c.compileVecIndex(x, mode)
	}
	c.nc(c.loop.At, "unsupported vector expression %T", e)
	return nil
}

func (c *compiler) compileVecBin(x *BinOp) vecFn {
	op := arithFn(x.Op[0])
	if op == nil || len(x.Op) != 1 {
		c.nc(x.At, "operator %q is not a vector operator", x.Op)
	}
	lt := c.inferExpr(x.L)
	rt := c.inferExpr(x.R)
	sid := c.newScratch()
	switch {
	case lt == tVec && rt == tVec:
		l := c.compileVec(x.L, vecConsume)
		r := c.compileVec(x.R, vecConsume)
		return func(f *frame) []float64 {
			lv := l(f)
			rv := r(f)
			if len(lv) != len(rv) {
				fail("lang: vector length mismatch %d vs %d", len(lv), len(rv))
			}
			out := f.growScratch(sid, len(lv))
			for i := range lv {
				out[i] = op(lv[i], rv[i])
			}
			return out
		}
	case lt == tVec:
		l := c.compileVec(x.L, vecConsume)
		r := c.compileFloat(x.R)
		return func(f *frame) []float64 {
			lv := l(f)
			rv := r(f)
			out := f.growScratch(sid, len(lv))
			for i := range lv {
				out[i] = op(lv[i], rv)
			}
			return out
		}
	default:
		l := c.compileFloat(x.L)
		r := c.compileVec(x.R, vecConsume)
		return func(f *frame) []float64 {
			lv := l(f)
			rv := r(f)
			out := f.growScratch(sid, len(rv))
			for i := range rv {
				out[i] = op(lv, rv[i])
			}
			return out
		}
	}
}

func (c *compiler) compileVecIndex(x *Index, mode vecMode) vecFn {
	base := x.Base
	ai := c.arrayIx[base]
	sh := c.subShape(x, ai)
	ii := c.newIdx(sh.rank)
	sid := c.newScratch()
	rd := sh.rangeDim
	generic := func(f *frame, a ArrayAccess) []float64 {
		ix := f.idx[ii]
		lo, hi := sh.resolve(f, ix)
		out := f.growScratch(sid, int(hi-lo+1))
		for v := lo; v <= hi; v++ {
			ix[rd] = v
			out[v-lo] = a.At(ix...)
		}
		return out
	}
	// Zero-copy fast path: a full range on the contiguous first
	// dimension of a dense array, in a position where the result is
	// consumed before any write can occur, returns the live parameter
	// vector (the @view of Fig. 5) instead of copying.
	if mode == vecConsume && rd == 0 && sh.full && sh.rank >= 1 {
		rest := make([]floatFn, sh.rank-1)
		for d := 1; d < sh.rank; d++ {
			rest[d-1] = sh.points[d]
		}
		dims := c.arrayDims[ai]
		extent := sh.extent
		ri := c.newIdx(len(rest))
		// atLoop reads element-wise with subscripts already evaluated
		// into ix (so the out-of-bounds panic is the ArrayAccess
		// implementation's own, exactly as the interpreter raises it,
		// and subscript side effects are not repeated).
		atLoop := func(f *frame, a ArrayAccess, ix []int64) []float64 {
			out := f.growScratch(sid, int(extent))
			for v := int64(0); v < extent; v++ {
				ix[0] = v
				out[v] = a.At(ix...)
			}
			return out
		}
		return func(f *frame) []float64 {
			if va := f.fast[ai]; va != nil {
				ix := f.idx[ri]
				inBounds := true
				for d, sf := range rest {
					ix[d] = int64(sf(f)) - 1
					if ix[d] < 0 || ix[d] >= dims[d+1] {
						inBounds = false
					}
				}
				if inBounds {
					return va.Vec(ix...)
				}
				// Out of bounds: take the element-wise path so the
				// panic matches the interpreter's At-based read.
				full := f.idx[ii]
				copy(full[1:], ix)
				return atLoop(f, va, full)
			}
			a := f.arrays[ai]
			if a == nil {
				fail("lang: read of unknown array %q", base)
			}
			return generic(f, a)
		}
	}
	return func(f *frame) []float64 {
		a := f.arrays[ai]
		if a == nil {
			fail("lang: read of unknown array %q", base)
		}
		return generic(f, a)
	}
}

func (c *compiler) compileBool(e Expr) boolFn {
	switch x := e.(type) {
	case *Bool:
		v := x.Val
		return func(*frame) bool { return v }
	case *Ident:
		name := x.Name
		slot := c.boolIx[name]
		return func(f *frame) bool {
			if !f.boDef[slot] {
				fail("lang: undefined variable %q", name)
			}
			return f.bo[slot]
		}
	case *BinOp:
		l := c.compileFloat(x.L)
		r := c.compileFloat(x.R)
		switch x.Op {
		case "==":
			return func(f *frame) bool { return l(f) == r(f) }
		case "!=":
			return func(f *frame) bool { return l(f) != r(f) }
		case "<":
			return func(f *frame) bool { return l(f) < r(f) }
		case "<=":
			return func(f *frame) bool { return l(f) <= r(f) }
		case ">":
			return func(f *frame) bool { return l(f) > r(f) }
		case ">=":
			return func(f *frame) bool { return l(f) >= r(f) }
		}
	}
	c.nc(c.loop.At, "unsupported boolean expression %s", e)
	return nil
}

// --- execution ---

// CompiledKernel is one executor's mutable instance of a CompiledLoop:
// bound arrays and buffers, global values, and reusable scratch. Not
// safe for concurrent use; create one per goroutine with NewKernel.
type CompiledKernel struct {
	cl *CompiledLoop
	f  frame
}

// NewKernel allocates a kernel instance with empty bindings.
func (cl *CompiledLoop) NewKernel() *CompiledKernel {
	k := &CompiledKernel{cl: cl}
	f := &k.f
	f.fl = make([]float64, cl.numFloat)
	f.flDef = make([]bool, cl.numFloat)
	f.vec = make([][]float64, cl.numVec)
	f.vecDef = make([]bool, cl.numVec)
	f.bo = make([]bool, cl.numBool)
	f.boDef = make([]bool, cl.numBool)
	f.gl = make([]float64, len(cl.globalNames))
	f.glDef = make([]bool, len(cl.globalNames))
	f.arrays = make([]ArrayAccess, len(cl.arrayNames))
	f.fast = make([]VecAccess, len(cl.arrayNames))
	f.buffers = make([]BufferAccess, len(cl.bufNames))
	f.scratch = make([][]float64, cl.nScratch)
	f.idx = make([][]int64, len(cl.idxSizes))
	for i, n := range cl.idxSizes {
		f.idx[i] = make([]int64, n)
	}
	return k
}

// BindArray binds a DistArray view to its slot; the view's extents must
// match the compile-time environment.
func (k *CompiledKernel) BindArray(name string, a ArrayAccess) error {
	i, ok := k.cl.arrayIx[name]
	if !ok {
		return fmt.Errorf("lang: compiled loop has no array %q", name)
	}
	want := k.cl.arrayDims[i]
	got := a.Dims()
	if len(got) != len(want) {
		return fmt.Errorf("lang: array %q bound with rank %d, compiled for %d", name, len(got), len(want))
	}
	for d := range want {
		if got[d] != want[d] {
			return fmt.Errorf("lang: array %q bound with dims %v, compiled for %v", name, got, want)
		}
	}
	k.f.arrays[i] = a
	k.f.fast[i] = nil
	if va, ok := a.(VecAccess); ok && va.IsDense() {
		k.f.fast[i] = va
	}
	return nil
}

// BindBuffer binds a DistArray Buffer to its slot.
func (k *CompiledKernel) BindBuffer(name string, b BufferAccess) error {
	i, ok := k.cl.bufIx[name]
	if !ok {
		return fmt.Errorf("lang: compiled loop has no buffer %q", name)
	}
	k.f.buffers[i] = b
	return nil
}

// SetRng backs the rand() builtin (nil makes rand() an error, matching
// Machine semantics).
func (k *CompiledKernel) SetRng(r RandSource) { k.f.rng = r }

// SetStepBudget bounds inner for-range body executions across the
// kernel's lifetime; 0 disables the budget. Mirrors Machine.StepBudget.
func (k *CompiledKernel) SetStepBudget(n int64) { k.f.budget = n }

// SetVecLimit bounds zeros() vector lengths; 0 disables the limit.
// Mirrors Machine.VecLimit.
func (k *CompiledKernel) SetVecLimit(n int64) { k.f.vecLimit = n }

// SetGlobal sets a global slot's value, reporting whether the loop
// declares the name.
func (k *CompiledKernel) SetGlobal(name string, v float64) bool {
	i, ok := k.cl.globalIx[name]
	if !ok {
		return false
	}
	k.f.gl[i] = v
	k.f.glDef[i] = true
	return true
}

// Global reads a global by name.
func (k *CompiledKernel) Global(name string) (float64, bool) {
	i, ok := k.cl.globalIx[name]
	if !ok {
		return 0, false
	}
	return k.f.gl[i], true
}

// GlobalSlot resolves a global name to its slot (-1 when absent), for
// allocation-free reads via GlobalAt on hot paths.
func (k *CompiledKernel) GlobalSlot(name string) int {
	i, ok := k.cl.globalIx[name]
	if !ok {
		return -1
	}
	return i
}

// GlobalAt reads a global by slot.
func (k *CompiledKernel) GlobalAt(slot int) float64 { return k.f.gl[slot] }

// RunIteration executes the loop body for one iteration. The key slice
// is borrowed for the duration of the call and never retained. Runtime
// faults the interpreter reports as errors come back as errors; array
// bounds violations panic, exactly as they do under interpretation.
func (k *CompiledKernel) RunIteration(key []int64, val float64) (err error) {
	f := &k.f
	for i := range f.flDef {
		f.flDef[i] = false
	}
	for i := range f.vecDef {
		f.vecDef[i] = false
	}
	for i := range f.boDef {
		f.boDef[i] = false
	}
	f.key = key
	if k.cl.valSlot >= 0 {
		f.fl[k.cl.valSlot] = val
		f.flDef[k.cl.valSlot] = true
	}
	defer func() {
		if r := recover(); r != nil {
			if kf, ok := r.(kernelFault); ok {
				err = kf.err
				return
			}
			panic(r)
		}
	}()
	k.cl.body(f)
	return nil
}

// RunLoop executes the loop body once per element of the bound
// iteration-space array, in deterministic element order, stopping at
// the first error.
func (k *CompiledKernel) RunLoop() error {
	iterVar := k.cl.loop.IterVar
	i, ok := k.cl.arrayIx[iterVar]
	if !ok || k.f.arrays[i] == nil {
		return fmt.Errorf("lang: iteration space %q not bound", iterVar)
	}
	iter, ok := k.f.arrays[i].(Iterable)
	if !ok {
		return fmt.Errorf("lang: iteration space %q is not iterable on this machine", iterVar)
	}
	return forEachStop(iter, func(idx []int64, v float64) error {
		return k.RunIteration(idx, v)
	})
}
