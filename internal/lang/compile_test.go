package lang

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"orion/internal/dsm"
)

// ---------------------------------------------------------------------
// Differential harness: run a program under both backends and require
// bitwise-identical outcomes — same stop point, same error or panic,
// same DistArray contents, same global/accumulator values.
// ---------------------------------------------------------------------

const (
	fillFloats = iota // uniform [0,1) values
	fillInts          // small integers 1..6 (usable as subscripts)
)

// buildArrays makes one dense DistArray per declared array,
// deterministically filled (sorted name order, seeded generator).
func buildArrays(env *Env, scheme int, seed int64) map[string]*dsm.DistArray {
	names := make([]string, 0, len(env.Arrays))
	for n := range env.Arrays {
		names = append(names, n)
	}
	sort.Strings(names)
	rng := rand.New(rand.NewSource(seed))
	out := make(map[string]*dsm.DistArray, len(names))
	for _, n := range names {
		a := dsm.NewDense(n, env.Arrays[n]...)
		a.Map(func(v float64) float64 {
			if scheme == fillInts {
				return float64(1 + rng.Intn(6))
			}
			return rng.Float64()
		})
		out[n] = a
	}
	return out
}

// collectKeys lists the iteration space's (key, val) pairs in walk
// order, optionally restricted to interior points (all 1-based coords
// in [2, dim-1]) so boundary-relative stencils stay in bounds.
func collectKeys(iter *dsm.DistArray, interior bool) (keys [][]int64, vals []float64) {
	dims := iter.Dims()
	iter.ForEach(func(idx []int64, v float64) {
		if interior {
			for d, c := range idx {
				if c < 1 || c > dims[d]-2 {
					return
				}
			}
		}
		keys = append(keys, idx)
		vals = append(vals, v)
	})
	return keys, vals
}

// diffGlobals picks deterministic values for the loop's driver globals:
// accumulators start at zero (as dslkernel initializes them), known
// hyperparameters get values that keep the examples in bounds, and the
// rest get distinct arbitrary constants.
func diffGlobals(env *Env, loop *Loop, declared []string) map[string]float64 {
	known := map[string]float64{
		"step_size": 0.05, "K": 6, "alpha": 0.1, "beta": 0.01, "vbeta": 0.8,
	}
	accums := map[string]bool{}
	for _, a := range Accumulators(loop) {
		accums[a] = true
	}
	set := map[string]bool{}
	var names []string
	add := func(ns []string) {
		for _, n := range ns {
			if !set[n] {
				set[n] = true
				names = append(names, n)
			}
		}
	}
	add(declared)
	if spec, err := Analyze(loop, env); err == nil {
		add(spec.Inherited)
	}
	add(Accumulators(loop))
	sort.Strings(names)
	out := make(map[string]float64, len(names))
	for i, n := range names {
		switch {
		case accums[n]:
			out[n] = 0
		default:
			if v, ok := known[n]; ok {
				out[n] = v
			} else {
				out[n] = 0.3 + 0.11*float64(i)
			}
		}
	}
	return out
}

// backendResult is one backend's observable outcome.
type backendResult struct {
	arrays   map[string]*dsm.DistArray
	stop     int // iterations fully executed before the run ended
	errMsg   string
	panicked bool
	panicMsg string
	globals  map[string]float64
}

func runOne(step func(i int) error, n int) (stop int, errMsg string, panicked bool, panicMsg string) {
	for i := 0; i < n; i++ {
		var err error
		func() {
			defer func() {
				if r := recover(); r != nil {
					panicked = true
					panicMsg = fmt.Sprint(r)
				}
			}()
			err = step(i)
		}()
		if panicked {
			return i, "", true, panicMsg
		}
		if err != nil {
			return i, err.Error(), false, ""
		}
	}
	return n, "", false, ""
}

type diffConfig struct {
	scheme   int
	interior bool
	budget   int64
	vecLimit int64
	seed     int64
	maxIters int
}

// runInterp executes the program on the tree-walking interpreter.
func runInterp(prog *Program, globals map[string]float64, cfg diffConfig) backendResult {
	arrays := buildArrays(prog.Env, cfg.scheme, cfg.seed)
	m := NewMachine()
	for n, a := range arrays {
		m.Arrays[n] = a
	}
	for n, target := range prog.Env.Buffers {
		m.Buffers[n] = dsm.NewBuffer(arrays[target], nil)
	}
	for n, v := range globals {
		m.Globals[n] = v
	}
	m.Rng = rand.New(rand.NewSource(cfg.seed + 1))
	m.StepBudget = cfg.budget
	m.VecLimit = cfg.vecLimit
	keys, vals := collectKeys(arrays[prog.Loop.IterVar], cfg.interior)
	if cfg.maxIters > 0 && len(keys) > cfg.maxIters {
		keys, vals = keys[:cfg.maxIters], vals[:cfg.maxIters]
	}
	res := backendResult{arrays: arrays, globals: map[string]float64{}}
	res.stop, res.errMsg, res.panicked, res.panicMsg = runOne(func(i int) error {
		return m.RunIteration(prog.Loop, keys[i], vals[i])
	}, len(keys))
	// Flush buffers so buffered updates land in the arrays we compare.
	for n, b := range m.Buffers {
		b.(*dsm.Buffer).Flush(arrays[prog.Env.Buffers[n]])
	}
	for n := range globals {
		res.globals[n] = m.Globals[n].(float64)
	}
	return res
}

// runCompiled executes the program on the closure-compiled backend.
func runCompiled(t *testing.T, prog *Program, globals map[string]float64, cfg diffConfig) (backendResult, *NotCompilableError) {
	t.Helper()
	names := make([]string, 0, len(globals))
	for n := range globals {
		names = append(names, n)
	}
	sort.Strings(names)
	cl, err := CompileLoop(prog.Loop, &CompileEnv{
		Arrays:  prog.Env.Arrays,
		Buffers: prog.Env.Buffers,
		Globals: names,
	})
	if err != nil {
		nce, ok := err.(*NotCompilableError)
		if !ok {
			t.Fatalf("CompileLoop failed with %T: %v", err, err)
		}
		return backendResult{}, nce
	}
	arrays := buildArrays(prog.Env, cfg.scheme, cfg.seed)
	k := cl.NewKernel()
	for n, a := range arrays {
		if err := k.BindArray(n, a); err != nil {
			t.Fatalf("BindArray(%s): %v", n, err)
		}
	}
	bufs := map[string]*dsm.Buffer{}
	for n, target := range prog.Env.Buffers {
		bufs[n] = dsm.NewBuffer(arrays[target], nil)
		if err := k.BindBuffer(n, bufs[n]); err != nil {
			t.Fatalf("BindBuffer(%s): %v", n, err)
		}
	}
	for n, v := range globals {
		if !k.SetGlobal(n, v) {
			t.Fatalf("SetGlobal(%s) not accepted", n)
		}
	}
	k.SetRng(rand.New(rand.NewSource(cfg.seed + 1)))
	k.SetStepBudget(cfg.budget)
	k.SetVecLimit(cfg.vecLimit)
	keys, vals := collectKeys(arrays[prog.Loop.IterVar], cfg.interior)
	if cfg.maxIters > 0 && len(keys) > cfg.maxIters {
		keys, vals = keys[:cfg.maxIters], vals[:cfg.maxIters]
	}
	res := backendResult{arrays: arrays, globals: map[string]float64{}}
	res.stop, res.errMsg, res.panicked, res.panicMsg = runOne(func(i int) error {
		return k.RunIteration(keys[i], vals[i])
	}, len(keys))
	for n, b := range bufs {
		b.Flush(arrays[prog.Env.Buffers[n]])
	}
	for _, n := range names {
		v, _ := k.Global(n)
		res.globals[n] = v
	}
	return res, nil
}

// compareResults requires the two backends' outcomes to be identical,
// bit for bit.
func compareResults(t *testing.T, label string, interp, compiled backendResult) {
	t.Helper()
	if interp.stop != compiled.stop {
		t.Fatalf("%s: interp stopped after %d iterations, compiled after %d (interp err=%q panic=%q; compiled err=%q panic=%q)",
			label, interp.stop, compiled.stop, interp.errMsg, interp.panicMsg, compiled.errMsg, compiled.panicMsg)
	}
	if interp.errMsg != compiled.errMsg {
		t.Fatalf("%s: error mismatch:\ninterp:   %q\ncompiled: %q", label, interp.errMsg, compiled.errMsg)
	}
	if interp.panicked != compiled.panicked || interp.panicMsg != compiled.panicMsg {
		t.Fatalf("%s: panic mismatch:\ninterp:   %v %q\ncompiled: %v %q",
			label, interp.panicked, interp.panicMsg, compiled.panicked, compiled.panicMsg)
	}
	for n, a := range interp.arrays {
		b := compiled.arrays[n]
		mismatch := ""
		a.ForEach(func(idx []int64, v float64) {
			if mismatch != "" {
				return
			}
			if w := b.At(idx...); math.Float64bits(w) != math.Float64bits(v) {
				mismatch = fmt.Sprintf("array %s%v: interp %v, compiled %v", n, idx, v, w)
			}
		})
		if mismatch != "" {
			t.Fatalf("%s: %s", label, mismatch)
		}
	}
	for n, v := range interp.globals {
		if w := compiled.globals[n]; math.Float64bits(w) != math.Float64bits(v) {
			t.Fatalf("%s: global %s: interp %v, compiled %v", label, n, v, w)
		}
	}
}

// diffProgram runs one parsed program under both backends and compares.
// Returns false when the program is outside the compiled subset.
func diffProgram(t *testing.T, label string, prog *Program, cfg diffConfig) bool {
	t.Helper()
	globals := diffGlobals(prog.Env, prog.Loop, prog.Globals)
	compiled, nce := runCompiled(t, prog, globals, cfg)
	if nce != nil {
		return false
	}
	interp := runInterp(prog, globals, cfg)
	compareResults(t, label, interp, compiled)
	return true
}

// exampleProgramSources loads every shipped .orion program.
func exampleProgramSources(t testing.TB) map[string]string {
	pattern := filepath.Join("..", "..", "examples", "*", "*.orion")
	files, err := filepath.Glob(pattern)
	if err != nil || len(files) == 0 {
		t.Fatalf("no example programs found at %s (err=%v)", pattern, err)
	}
	out := make(map[string]string, len(files))
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatalf("read %s: %v", f, err)
		}
		out[filepath.Base(f)] = string(src)
	}
	return out
}

// TestDifferentialExamples: every shipped example must compile and
// produce bitwise-identical results under both backends, across two
// fill schemes and both full and interior walks.
func TestDifferentialExamples(t *testing.T) {
	for name, src := range exampleProgramSources(t) {
		prog, err := ParseProgram(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, scheme := range []int{fillFloats, fillInts} {
			for _, interior := range []bool{false, true} {
				label := fmt.Sprintf("%s/scheme=%d/interior=%v", name, scheme, interior)
				cfg := diffConfig{scheme: scheme, interior: interior, seed: 42}
				if !diffProgram(t, label, prog, cfg) {
					t.Fatalf("%s: example is outside the compiled subset", label)
				}
			}
		}
	}
}

// ---------------------------------------------------------------------
// Randomized differential property tests.
// ---------------------------------------------------------------------

// typedExpr generates a random float-typed expression over a fixed
// differential environment (arrays A 4x4 and B 3x4, vector p, floats
// x/y, global g, loop key/val).
func typedFloatExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch rng.Intn(7) {
		case 0:
			return &Num{Val: float64(rng.Intn(5))}
		case 1:
			return &Ident{Name: "x"}
		case 2:
			return &Ident{Name: "y"}
		case 3:
			return &Ident{Name: "g"}
		case 4:
			return &Ident{Name: "v"}
		case 5:
			return &Index{Base: "key", Subs: []Expr{&Num{Val: float64(1 + rng.Intn(2))}}}
		default:
			return &Num{Val: rng.Float64()}
		}
	}
	switch rng.Intn(8) {
	case 0:
		ops := []string{"+", "-", "*", "/"}
		return &BinOp{Op: ops[rng.Intn(len(ops))],
			L: typedFloatExpr(rng, depth-1), R: typedFloatExpr(rng, depth-1)}
	case 1:
		return &UnOp{Op: "-", X: typedFloatExpr(rng, depth-1)}
	case 2:
		fns := []string{"abs", "abs2", "sqrt", "exp", "sigmoid", "floor", "ceil"}
		return &Call{Fn: fns[rng.Intn(len(fns))], Args: []Expr{typedFloatExpr(rng, depth-1)}}
	case 3:
		fn := []string{"min", "max"}[rng.Intn(2)]
		return &Call{Fn: fn, Args: []Expr{typedFloatExpr(rng, depth-1), typedFloatExpr(rng, depth-1)}}
	case 4:
		return &Index{Base: "A", Subs: []Expr{typedSub(rng), typedSub(rng)}}
	case 5:
		return &Call{Fn: "dot", Args: []Expr{typedVecExpr(rng, depth-1), typedVecExpr(rng, depth-1)}}
	case 6:
		return &Index{Base: "p", Subs: []Expr{typedSub(rng)}}
	default:
		return &Call{Fn: "rand"}
	}
}

// typedSub generates a subscript expression that is usually in bounds
// for a 4-extent dimension (out-of-bounds panics are compared too, but
// should be rare so runs make progress).
func typedSub(rng *rand.Rand) Expr {
	switch rng.Intn(6) {
	case 0:
		return &Index{Base: "key", Subs: []Expr{&Num{Val: 2}}} // key[2] in 1..4
	case 1:
		return &Ident{Name: "x"}
	default:
		return &Num{Val: float64(1 + rng.Intn(4))}
	}
}

func typedVecExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch rng.Intn(3) {
		case 0:
			return &Index{Base: "A", Subs: []Expr{&RangeExpr{Full: true}, typedSub(rng)}}
		case 1:
			return &Call{Fn: "zeros", Args: []Expr{&Num{Val: 4}}}
		default:
			return &Ident{Name: "p"}
		}
	}
	switch rng.Intn(4) {
	case 0:
		ops := []string{"+", "-", "*"}
		return &BinOp{Op: ops[rng.Intn(len(ops))],
			L: typedVecExpr(rng, depth-1), R: typedVecExpr(rng, depth-1)}
	case 1:
		return &BinOp{Op: "*", L: typedFloatExpr(rng, depth-1), R: typedVecExpr(rng, depth-1)}
	case 2:
		return &UnOp{Op: "-", X: typedVecExpr(rng, depth-1)}
	default:
		return typedVecExpr(rng, 0)
	}
}

func typedStmt(rng *rand.Rand, depth int) Stmt {
	ops := []string{"=", "+=", "-=", "*=", "/="}
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(7) {
		case 0:
			return &Assign{Target: &Ident{Name: []string{"x", "y"}[rng.Intn(2)]},
				Op: ops[rng.Intn(len(ops))], Value: typedFloatExpr(rng, 2)}
		case 1:
			v := typedVecExpr(rng, 2)
			op := "="
			if _, isIdent := v.(*Ident); isIdent || rng.Intn(2) == 0 {
				op = []string{"+=", "-=", "*="}[rng.Intn(3)]
			}
			return &Assign{Target: &Ident{Name: "p"}, Op: op, Value: v}
		case 2:
			return &Assign{Target: &Index{Base: "p", Subs: []Expr{typedSub(rng)}},
				Op: ops[rng.Intn(len(ops))], Value: typedFloatExpr(rng, 2)}
		case 3:
			return &Assign{Target: &Index{Base: "A", Subs: []Expr{typedSub(rng), typedSub(rng)}},
				Op: ops[rng.Intn(len(ops))], Value: typedFloatExpr(rng, 2)}
		case 4:
			return &Assign{Target: &Index{Base: "A", Subs: []Expr{&RangeExpr{Full: true}, typedSub(rng)}},
				Op: ops[rng.Intn(len(ops))], Value: typedVecExpr(rng, 2)}
		case 5:
			return &Assign{Target: &Index{Base: "buf", Subs: []Expr{typedSub(rng), typedSub(rng)}},
				Op: []string{"+=", "-="}[rng.Intn(2)], Value: typedFloatExpr(rng, 2)}
		default:
			return &Assign{Target: &Ident{Name: "acc"}, Op: "+=", Value: typedFloatExpr(rng, 2)}
		}
	}
	switch rng.Intn(3) {
	case 0:
		cmp := []string{"<", "<=", ">", ">=", "==", "!="}
		st := &If{Cond: &BinOp{Op: cmp[rng.Intn(len(cmp))],
			L: typedFloatExpr(rng, 1), R: typedFloatExpr(rng, 1)},
			Then: []Stmt{typedStmt(rng, depth-1)}}
		if rng.Intn(2) == 0 {
			st.Else = []Stmt{typedStmt(rng, depth-1)}
		}
		return st
	case 1:
		return &ForRange{Var: "k", Lo: &Num{Val: 1}, Hi: &Num{Val: float64(1 + rng.Intn(3))},
			Body: []Stmt{typedStmt(rng, depth-1)}}
	default:
		return &ExprStmt{X: typedFloatExpr(rng, 2)}
	}
}

// TestDifferentialRandomPrograms: randomly generated (mostly
// well-typed) loops must behave identically under both backends.
func TestDifferentialRandomPrograms(t *testing.T) {
	env := &Env{
		Arrays: map[string][]int64{
			"data": {5, 4},
			"A":    {4, 4},
			"B":    {3, 4},
		},
		Buffers: map[string]string{"buf": "A"},
	}
	rng := rand.New(rand.NewSource(2026))
	compiledCount := 0
	for trial := 0; trial < 300; trial++ {
		loop := &Loop{KeyVar: "key", ValVar: "v", IterVar: "data"}
		// A prelude defines the locals so later statements mostly hit
		// the defined path; error paths still occur via OOB subscripts
		// and vector length mismatches.
		loop.Body = []Stmt{
			&Assign{Target: &Ident{Name: "x"}, Op: "=", Value: &Index{Base: "key", Subs: []Expr{&Num{Val: 2}}}},
			&Assign{Target: &Ident{Name: "y"}, Op: "=", Value: &Ident{Name: "v"}},
			&Assign{Target: &Ident{Name: "p"}, Op: "=", Value: &Call{Fn: "zeros", Args: []Expr{&Num{Val: 4}}}},
		}
		n := 1 + rng.Intn(5)
		for i := 0; i < n; i++ {
			loop.Body = append(loop.Body, typedStmt(rng, 2))
		}
		// Round-trip through source so the test covers exactly what the
		// wire protocol ships.
		src := loop.String()
		parsed, err := Parse(src)
		if err != nil {
			t.Fatalf("trial %d: generated loop does not parse: %v\n%s", trial, err, src)
		}
		prog := &Program{Env: env, Globals: []string{"g"}, Loop: parsed}
		cfg := diffConfig{scheme: fillInts, seed: int64(trial), maxIters: 20}
		if diffProgram(t, fmt.Sprintf("trial %d:\n%s", trial, src), prog, cfg) {
			compiledCount++
		}
	}
	if compiledCount < 200 {
		t.Fatalf("only %d/300 random programs were compilable — generator or compiler subset too narrow", compiledCount)
	}
}

// TestDifferentialRandomASTs reuses the untyped AST generator: whenever
// one of its (frequently ill-typed) loops happens to compile, the two
// backends must still agree.
func TestDifferentialRandomASTs(t *testing.T) {
	env := &Env{Arrays: map[string][]int64{
		"data": {4, 3},
		"A":    {4, 3},
	}}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		loop := &Loop{KeyVar: "key", ValVar: "v", IterVar: "data"}
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			loop.Body = append(loop.Body, randomStmt(rng, 2))
		}
		prog := &Program{Env: env, Loop: loop}
		cfg := diffConfig{scheme: fillInts, seed: int64(trial), maxIters: 12}
		diffProgram(t, fmt.Sprintf("trial %d:\n%s", trial, loop.String()), prog, cfg)
	}
}

// ---------------------------------------------------------------------
// Compiled-backend unit tests.
// ---------------------------------------------------------------------

func compileMF(t testing.TB) (*CompiledLoop, *Loop) {
	t.Helper()
	loop, err := Parse(mfSrc)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := CompileLoop(loop, &CompileEnv{
		Arrays: map[string][]int64{
			"ratings": {100, 100}, "W": {16, 100}, "H": {16, 100},
		},
		Globals: []string{"step_size"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl, loop
}

func bindMF(t testing.TB, cl *CompiledLoop) (*CompiledKernel, *dsm.DistArray, *dsm.DistArray) {
	t.Helper()
	k := cl.NewKernel()
	w := dsm.NewDense("W", 16, 100)
	h := dsm.NewDense("H", 16, 100)
	w.FillRandn(rand.New(rand.NewSource(1)), 0.1)
	h.FillRandn(rand.New(rand.NewSource(2)), 0.1)
	for name, a := range map[string]*dsm.DistArray{
		"ratings": dsm.NewSparse("ratings", 100, 100), "W": w, "H": h,
	} {
		if err := k.BindArray(name, a); err != nil {
			t.Fatal(err)
		}
	}
	if !k.SetGlobal("step_size", 0.01) {
		t.Fatal("step_size not a global")
	}
	return k, w, h
}

// TestCompiledMFMatchesInterp: spot-check the MF body end to end.
func TestCompiledMFMatchesInterp(t *testing.T) {
	cl, loop := compileMF(t)
	k, w, h := bindMF(t, cl)

	m := NewMachine()
	wi := w.Clone()
	hi := h.Clone()
	m.Arrays["ratings"] = dsm.NewSparse("ratings", 100, 100)
	m.Arrays["W"] = wi
	m.Arrays["H"] = hi
	m.Globals["step_size"] = float64(0.01)

	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		key := []int64{int64(rng.Intn(100)), int64(rng.Intn(100))}
		val := rng.Float64() * 5
		if err := k.RunIteration(key, val); err != nil {
			t.Fatalf("compiled iteration %d: %v", i, err)
		}
		if err := m.RunIteration(loop, key, val); err != nil {
			t.Fatalf("interp iteration %d: %v", i, err)
		}
	}
	for r := 0; r < 16; r++ {
		for c := 0; c < 100; c++ {
			if math.Float64bits(w.At(int64(r), int64(c))) != math.Float64bits(wi.At(int64(r), int64(c))) {
				t.Fatalf("W[%d,%d] diverged: %v vs %v", r, c, w.At(int64(r), int64(c)), wi.At(int64(r), int64(c)))
			}
			if math.Float64bits(h.At(int64(r), int64(c))) != math.Float64bits(hi.At(int64(r), int64(c))) {
				t.Fatalf("H[%d,%d] diverged: %v vs %v", r, c, h.At(int64(r), int64(c)), hi.At(int64(r), int64(c)))
			}
		}
	}
}

// TestCompiledZeroAllocs: the acceptance criterion — a steady-state
// compiled MF SGD iteration performs zero allocations.
func TestCompiledZeroAllocs(t *testing.T) {
	cl, _ := compileMF(t)
	k, _, _ := bindMF(t, cl)
	key := []int64{3, 7}
	// Warm the scratch slabs.
	for i := 0; i < 4; i++ {
		if err := k.RunIteration(key, 1.5); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := k.RunIteration(key, 1.5); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("compiled MF iteration allocates %v times, want 0", allocs)
	}
}

// TestCompiledSpeedup: the compiled backend must beat the interpreter
// by a wide margin on the MF body (acceptance says >= 3x; assert a
// conservative 2x so CI noise cannot flake the gate).
func TestCompiledSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	loop, err := Parse(mfSrc)
	if err != nil {
		t.Fatal(err)
	}
	cl, _ := compileMF(t)
	k, _, _ := bindMF(t, cl)
	m := NewMachine()
	m.Arrays["ratings"] = dsm.NewSparse("ratings", 100, 100)
	m.Arrays["W"] = dsm.NewDense("W", 16, 100)
	m.Arrays["H"] = dsm.NewDense("H", 16, 100)
	m.Globals["step_size"] = float64(0.01)
	key := []int64{3, 7}

	compiled := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := k.RunIteration(key, 1.5); err != nil {
				b.Fatal(err)
			}
		}
	})
	interp := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := m.RunIteration(loop, key, 1.5); err != nil {
				b.Fatal(err)
			}
		}
	})
	ci := compiled.NsPerOp()
	ii := interp.NsPerOp()
	if ci <= 0 || ii <= 0 {
		t.Skipf("timer resolution too coarse: compiled %d ns, interp %d ns", ci, ii)
	}
	if ii < 2*ci {
		t.Fatalf("compiled backend is not >=2x faster: interp %d ns/iter, compiled %d ns/iter", ii, ci)
	}
	t.Logf("interp %d ns/iter, compiled %d ns/iter (%.1fx)", ii, ci, float64(ii)/float64(ci))
}

// TestNotCompilable: constructs outside the compiled subset must be
// rejected with *NotCompilableError (so callers fall back), never
// miscompiled.
func TestNotCompilable(t *testing.T) {
	env := &CompileEnv{
		Arrays:  map[string][]int64{"data": {4, 4}, "A": {4, 4}},
		Globals: []string{"g"},
	}
	cases := []struct{ name, src string }{
		{"key as value", "for (key, v) in data\n    x = key\nend\n"},
		{"vector aliasing", "for (key, v) in data\n    p = A[:, 1]\n    q = p\nend\n"},
		{"whole-array ref", "for (key, v) in data\n    x = A\nend\n"},
		{"vector comparison", "for (key, v) in data\n    p = A[:, 1] < 2\nend\n"},
		{"type conflict", "for (key, v) in data\n    x = 1\n    x = A[:, 1]\nend\n"},
		{"if non-bool", "for (key, v) in data\n    if v\n        x = 1\n    end\nend\n"},
		{"unknown function", "for (key, v) in data\n    x = frob(v)\nend\n"},
		{"arity mismatch", "for (key, v) in data\n    x = A[1]\nend\n"},
		{"two ranges", "for (key, v) in data\n    p = A[:, :]\nend\n"},
		{"local shadows array", "for (key, v) in data\n    A = 1\nend\n"},
		{"global vec assign", "for (key, v) in data\n    g = A[:, 1]\nend\n"},
	}
	for _, tc := range cases {
		loop, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("%s: parse: %v", tc.name, err)
		}
		_, err = CompileLoop(loop, env)
		if err == nil {
			t.Fatalf("%s: expected NotCompilableError, compiled fine", tc.name)
		}
		if _, ok := err.(*NotCompilableError); !ok {
			t.Fatalf("%s: error %T is not *NotCompilableError: %v", tc.name, err, err)
		}
	}
}

// TestCompiledRuntimeErrors: runtime faults must carry the exact
// interpreter messages (the differential fuzzer depends on it).
func TestCompiledRuntimeErrors(t *testing.T) {
	env := &CompileEnv{
		Arrays:  map[string][]int64{"data": {4, 4}, "A": {4, 4}, "B": {3, 4}},
		Globals: []string{"g"},
	}
	cases := []struct{ name, src, want string }{
		{"undefined read", "for (key, v) in data\n    if v < 0\n        x = 1\n    end\n    y = x\nend\n",
			`lang: undefined variable "x"`},
		{"compound undefined", "for (key, v) in data\n    if v < 0\n        x = 1\n    end\n    x += 1\nend\n",
			`lang: += of undefined variable "x"`},
		{"key oob", "for (key, v) in data\n    x = key[3]\nend\n",
			"lang: key subscript 3 out of range"},
		{"dot mismatch", "for (key, v) in data\n    x = dot(A[:, 1], B[:, 1])\nend\n",
			"lang: dot needs two equal-length vectors"},
		{"vec length mismatch", "for (key, v) in data\n    p = A[:, 1] + B[:, 1]\nend\n",
			"lang: vector length mismatch 4 vs 3"},
		{"range write mismatch", "for (key, v) in data\n    A[:, 1] = B[:, 1]\nend\n",
			"lang: A: vector length 3 does not match range 1:4"},
		{"rand without rng", "for (key, v) in data\n    x = rand()\nend\n",
			"lang: rand() requires a Machine with an Rng"},
		{"vec subscript oob", "for (key, v) in data\n    p = zeros(2)\n    x = p[5]\nend\n",
			"lang: vector subscript 5 out of range"},
		{"undefined global", "for (key, v) in data\n    x = g\nend\n",
			`lang: undefined variable "g"`},
	}
	for _, tc := range cases {
		loop, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("%s: parse: %v", tc.name, err)
		}
		cl, err := CompileLoop(loop, env)
		if err != nil {
			t.Fatalf("%s: compile: %v", tc.name, err)
		}
		k := cl.NewKernel()
		for name, dims := range env.Arrays {
			if err := k.BindArray(name, dsm.NewDense(name, dims...)); err != nil {
				t.Fatal(err)
			}
		}
		err = k.RunIteration([]int64{0, 0}, 1)
		if err == nil || err.Error() != tc.want {
			t.Fatalf("%s: got error %v, want %q", tc.name, err, tc.want)
		}
	}
}

// ---------------------------------------------------------------------
// Satellite: RunLoop early termination.
// ---------------------------------------------------------------------

// countingIter is an iteration-space double that counts visits. The
// base version only supports the legacy full-walk ForEach.
type countingIter struct {
	n      int
	visits int
}

func (c *countingIter) Dims() []int64                 { return []int64{int64(c.n)} }
func (c *countingIter) At(idx ...int64) float64       { return 0 }
func (c *countingIter) SetAt(v float64, idx ...int64) {}
func (c *countingIter) ForEach(f func(idx []int64, v float64)) {
	for i := 0; i < c.n; i++ {
		c.visits++
		f([]int64{int64(i)}, 0)
	}
}

// stoppingIter additionally supports early termination.
type stoppingIter struct{ countingIter }

func (c *stoppingIter) ForEachUntil(f func(idx []int64, v float64) bool) {
	for i := 0; i < c.n; i++ {
		c.visits++
		if !f([]int64{int64(i)}, 0) {
			return
		}
	}
}

// TestRunLoopStopsOnError: an iteration error must stop the walk when
// the iteration space supports early termination, and must still
// surface (skipping the tail) when it does not.
func TestRunLoopStopsOnError(t *testing.T) {
	// x is defined only when v > 0; the iterator yields v = 0, so the
	// read errors on the first iteration under both backends.
	loop, err := Parse("for (key, v) in data\n    if v > 0\n        x = 1\n    end\n    y = x\nend\n")
	if err != nil {
		t.Fatal(err)
	}

	m := NewMachine()
	stopper := &stoppingIter{countingIter{n: 100}}
	m.Arrays["data"] = stopper
	if err := m.RunLoop(loop); err == nil {
		t.Fatal("expected an error")
	}
	if stopper.visits != 1 {
		t.Fatalf("early-terminating walk visited %d elements, want 1", stopper.visits)
	}

	m2 := NewMachine()
	legacy := &countingIter{n: 100}
	m2.Arrays["data"] = legacy
	if err := m2.RunLoop(loop); err == nil {
		t.Fatal("expected an error")
	}
	if legacy.visits != 100 {
		t.Fatalf("legacy walk visited %d elements, want 100 (skip semantics)", legacy.visits)
	}

	// The compiled backend stops early too.
	cl, err := CompileLoop(loop, &CompileEnv{Arrays: map[string][]int64{"data": {100}}})
	if err != nil {
		t.Fatal(err)
	}
	k := cl.NewKernel()
	stopper2 := &stoppingIter{countingIter{n: 100}}
	if err := k.BindArray("data", stopper2); err != nil {
		t.Fatal(err)
	}
	if err := k.RunLoop(); err == nil {
		t.Fatal("expected an error")
	}
	if stopper2.visits != 1 {
		t.Fatalf("compiled early-terminating walk visited %d elements, want 1", stopper2.visits)
	}
}

// TestDistArrayForEachUntil: the DistArray implementation visits in
// ForEach order and stops on demand, for dense and sparse layouts.
func TestDistArrayForEachUntil(t *testing.T) {
	dense := dsm.NewDense("d", 3, 2)
	dense.MapIndex(func(idx []int64, v float64) float64 { return float64(idx[0]*10 + idx[1]) })
	sparse := dsm.NewSparse("s", 5)
	sparse.SetAt(1, 4)
	sparse.SetAt(2, 1)
	sparse.SetAt(3, 3)
	for _, a := range []*dsm.DistArray{dense, sparse} {
		var full, until [][]int64
		a.ForEach(func(idx []int64, v float64) {
			full = append(full, append([]int64(nil), idx...))
		})
		a.ForEachUntil(func(idx []int64, v float64) bool {
			until = append(until, append([]int64(nil), idx...))
			return true
		})
		if fmt.Sprint(full) != fmt.Sprint(until) {
			t.Fatalf("%s: order differs: %v vs %v", a.Name(), full, until)
		}
		var count int
		a.ForEachUntil(func(idx []int64, v float64) bool {
			count++
			return count < 2
		})
		if count != 2 {
			t.Fatalf("%s: early stop visited %d elements, want 2", a.Name(), count)
		}
	}
}

// TestStepBudgetParity: both backends hit the budget at the same point
// with the same error.
func TestStepBudgetParity(t *testing.T) {
	src := "for (key, v) in data\n    acc = 0\n    for k = 1:100\n        acc += k\n    end\nend\n"
	prog := &Program{
		Env:  &Env{Arrays: map[string][]int64{"data": {3, 3}}},
		Loop: mustParse(t, src),
	}
	cfg := diffConfig{scheme: fillInts, seed: 5, budget: 150, vecLimit: 64}
	if !diffProgram(t, "step budget", prog, cfg) {
		t.Fatal("budget program should be compilable")
	}
}

func mustParse(t *testing.T, src string) *Loop {
	t.Helper()
	loop, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return loop
}
