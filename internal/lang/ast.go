package lang

import (
	"fmt"
	"strings"
)

// Expr is an expression node.
type Expr interface {
	exprNode()
	String() string
}

// Num is a numeric literal.
type Num struct {
	Val float64
	At  Pos
}

// Ident is a variable reference.
type Ident struct {
	Name string
	At   Pos
}

// BinOp is a binary operation: + - * / ^ == != < <= > >=.
type BinOp struct {
	Op   string
	L, R Expr
	At   Pos // position of the operator
}

// UnOp is unary negation.
type UnOp struct {
	Op string
	X  Expr
	At Pos
}

// Call is a builtin function call.
type Call struct {
	Fn   string
	Args []Expr
	At   Pos // position of the function name
}

// Index is a subscripted access base[subs...]; base is an identifier
// (a DistArray, a DistArray Buffer, or the loop key tuple).
type Index struct {
	Base string
	Subs []Expr
	At   Pos // position of the base identifier
}

// RangeExpr is lo:hi inside a subscript; Full marks a bare ':'.
type RangeExpr struct {
	Lo, Hi Expr
	Full   bool
	At     Pos
}

// Bool is a boolean literal.
type Bool struct {
	Val bool
	At  Pos
}

func (*Num) exprNode()       {}
func (*Ident) exprNode()     {}
func (*BinOp) exprNode()     {}
func (*UnOp) exprNode()      {}
func (*Call) exprNode()      {}
func (*Index) exprNode()     {}
func (*RangeExpr) exprNode() {}
func (*Bool) exprNode()      {}

func (n *Num) String() string   { return trimFloat(n.Val) }
func (n *Ident) String() string { return n.Name }
func (n *BinOp) String() string {
	return fmt.Sprintf("(%s %s %s)", n.L, n.Op, n.R)
}
func (n *UnOp) String() string { return fmt.Sprintf("(%s%s)", n.Op, n.X) }
func (n *Call) String() string {
	args := make([]string, len(n.Args))
	for i, a := range n.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", n.Fn, strings.Join(args, ", "))
}
func (n *Index) String() string {
	subs := make([]string, len(n.Subs))
	for i, s := range n.Subs {
		subs[i] = s.String()
	}
	return fmt.Sprintf("%s[%s]", n.Base, strings.Join(subs, ", "))
}
func (n *RangeExpr) String() string {
	if n.Full {
		return ":"
	}
	return fmt.Sprintf("%s:%s", n.Lo, n.Hi)
}
func (n *Bool) String() string {
	if n.Val {
		return "true"
	}
	return "false"
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}

// Stmt is a statement node.
type Stmt interface {
	stmtNode()
	String() string
}

// Assign is target op= expr; Op is "=", "+=", "-=", "*=", or "/=".
// Target is an *Ident (driver variable / accumulator) or an *Index
// (DistArray write).
type Assign struct {
	Target Expr
	Op     string
	Value  Expr
	At     Pos // position of the assignment target
}

// If is a conditional with optional else body.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	At   Pos // position of the 'if' keyword
}

// ForRange is an inner sequential loop: for v = lo:hi ... end.
// Unlike the top-level parallel loop it iterates a scalar range; its
// iterations execute sequentially on whichever worker runs the
// enclosing parallel iteration.
type ForRange struct {
	Var    string
	Lo, Hi Expr
	Body   []Stmt
	At     Pos // position of the 'for' keyword
}

// ExprStmt evaluates an expression for effect (rare; calls).
type ExprStmt struct {
	X  Expr
	At Pos
}

func (*Assign) stmtNode()   {}
func (*If) stmtNode()       {}
func (*ForRange) stmtNode() {}
func (*ExprStmt) stmtNode() {}

func (s *Assign) String() string {
	return fmt.Sprintf("%s %s %s", s.Target, s.Op, s.Value)
}
func (s *If) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "if %s\n", s.Cond)
	for _, st := range s.Then {
		fmt.Fprintf(&b, "  %s\n", st)
	}
	if len(s.Else) > 0 {
		b.WriteString("else\n")
		for _, st := range s.Else {
			fmt.Fprintf(&b, "  %s\n", st)
		}
	}
	b.WriteString("end")
	return b.String()
}
func (s *ForRange) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "for %s = %s:%s\n", s.Var, s.Lo, s.Hi)
	for _, st := range s.Body {
		fmt.Fprintf(&b, "  %s\n", st)
	}
	b.WriteString("end")
	return b.String()
}

func (s *ExprStmt) String() string { return s.X.String() }

// Loop is the top-level parallel for-loop:
//
//	for (key, val) in iterArray
//	    body...
//	end
type Loop struct {
	KeyVar  string // index-tuple variable
	ValVar  string // element-value variable ("" if omitted)
	IterVar string // the DistArray iterated over
	Body    []Stmt
	At      Pos // position of the 'for' keyword
	IterPos Pos // position of the iteration-space array name
}

func (l *Loop) String() string {
	var b strings.Builder
	if l.ValVar != "" {
		fmt.Fprintf(&b, "for (%s, %s) in %s\n", l.KeyVar, l.ValVar, l.IterVar)
	} else {
		fmt.Fprintf(&b, "for %s in %s\n", l.KeyVar, l.IterVar)
	}
	for _, st := range l.Body {
		fmt.Fprintf(&b, "  %s\n", st)
	}
	b.WriteString("end")
	return b.String()
}
