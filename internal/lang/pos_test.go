package lang

import (
	"errors"
	"strings"
	"testing"

	"orion/internal/diag"
)

// Regression tests pinning line/column information in analyzer and
// parser errors: diagnostics must cite where the problem is, not just
// what it is.

func TestParseErrorsCarryPositions(t *testing.T) {
	cases := []struct {
		src        string
		line, col  int
		msgSnippet string
	}{
		{"for (key, v) in data\n    x = = 3\nend\n", 2, 9, "unexpected"},
		{"for key, v) in data\nend\n", 1, 5, "expected"},
		{"for (key, v) in data\n    y = 3 +\nend\n", 2, 12, "unexpected"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Fatalf("Parse(%q) succeeded, want error", c.src)
		}
		var se *SyntaxError
		if !errors.As(err, &se) {
			t.Fatalf("Parse(%q) error %T is not *SyntaxError: %v", c.src, err, err)
		}
		if se.Pos.Line != c.line {
			t.Fatalf("Parse(%q) error at line %d, want %d (%v)", c.src, se.Pos.Line, c.line, err)
		}
		if !strings.Contains(se.Msg, c.msgSnippet) {
			t.Fatalf("Parse(%q) error %q, want mention of %q", c.src, se.Msg, c.msgSnippet)
		}
	}
}

func TestAnalyzeDiagsCarryPositions(t *testing.T) {
	env := &Env{Arrays: map[string][]int64{"data": {10, 10}, "A": {10, 10}}, Buffers: map[string]string{"buf": "A"}}
	cases := []struct {
		name      string
		src       string
		code      string
		line, col int
	}{
		{"unknown function", "for (key, v) in data\n    x = mystery(v)\nend\n", diag.CodeUnknownFn, 2, 9},
		{"unknown iteration space", "for (key, v) in nope\n    x = v\nend\n", diag.CodeUnknownIter, 1, 17},
		{"unknown subscripted name", "for (key, v) in data\n    x = B[key[1], key[2]]\nend\n", diag.CodeUnknownSub, 2, 9},
		{"buffer read", "for (key, v) in data\n    x = buf[key[1], key[2]]\nend\n", diag.CodeBufferRead, 2, 9},
		{"dim out of range", "for (key, v) in data\n    A[key[3], key[1]] = v\nend\n", diag.CodeDimRange, 2, 5},
	}
	for _, c := range cases {
		loop, err := Parse(c.src)
		if err != nil {
			t.Fatalf("%s: parse: %v", c.name, err)
		}
		_, diags := AnalyzeDiags(loop, env, "t.orion")
		d := diags.First(c.code)
		if d == nil {
			t.Fatalf("%s: no %s diagnostic; got %v", c.name, c.code, diags)
		}
		if d.Pos.Line != c.line || d.Pos.Col != c.col {
			t.Fatalf("%s: %s at %d:%d, want %d:%d (%s)", c.name, c.code, d.Pos.Line, d.Pos.Col, c.line, c.col, d)
		}
		if d.Pos.File != "t.orion" {
			t.Fatalf("%s: diagnostic file %q, want t.orion", c.name, d.Pos.File)
		}
		// The legacy error interface must fail too.
		if _, err := Analyze(loop, env); err == nil {
			t.Fatalf("%s: Analyze accepted a program AnalyzeDiags rejects", c.name)
		}
	}
}

// TestAnalyzeErrorMentionsLine pins the user-visible error string: a
// rejected program's error must contain the offending line number.
func TestAnalyzeErrorMentionsLine(t *testing.T) {
	env := &Env{Arrays: map[string][]int64{"data": {10}}}
	src := "for (key, v) in data\n    x = v\n    y = mystery(x)\nend\n"
	loop, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Analyze(loop, env)
	if err == nil {
		t.Fatal("expected an unknown-function error")
	}
	if !strings.Contains(err.Error(), "3:") {
		t.Fatalf("error %q does not cite line 3", err)
	}
	if !strings.Contains(err.Error(), "ORN013") {
		t.Fatalf("error %q does not carry the stable code", err)
	}
}

// TestProgramPositionsSpanPreamble: loop positions in a program file
// must be whole-file line numbers (offset past the preamble).
func TestProgramPositionsSpanPreamble(t *testing.T) {
	src := `array data 10 10
array A 10 10
---
for (key, v) in data
    x = mystery(v)
end
`
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.LoopLine != 3 {
		t.Fatalf("LoopLine = %d, want 3", prog.LoopLine)
	}
	_, diags := AnalyzeDiags(prog.Loop, prog.Env, "p.orion")
	d := diags.First(diag.CodeUnknownFn)
	if d == nil {
		t.Fatalf("no unknown-fn diagnostic: %v", diags)
	}
	if d.Pos.Line != 5 {
		t.Fatalf("diagnostic at file line %d, want 5 (preamble offset)", d.Pos.Line)
	}
}

func TestParseProgramPreambleErrors(t *testing.T) {
	cases := []struct {
		src  string
		line int
	}{
		{"array data\n---\nfor (key, v) in data\nend\n", 1},
		{"array data 10\nbuffer b nope\n---\nfor (key, v) in data\nend\n", 2},
		{"array data 10\nwhatever x\n---\nfor (key, v) in data\nend\n", 2},
		{"array data 10\nfor (key, v) in data\nend\n", 1}, // no separator
	}
	for _, c := range cases {
		_, err := ParseProgram(c.src)
		var pe *PreambleError
		if !errors.As(err, &pe) {
			t.Fatalf("ParseProgram(%q) error %v, want *PreambleError", c.src, err)
		}
		if pe.Line != c.line {
			t.Fatalf("ParseProgram(%q) error at line %d, want %d", c.src, pe.Line, c.line)
		}
	}
}
