package lang

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Program is a self-contained DSL program file: a preamble declaring
// the DistArray environment, a '---' separator, then the parallel loop
// source. This is the on-disk format consumed by cmd/orion-analyze and
// cmd/orion-vet:
//
//	array ratings 100 80
//	array W 8 100
//	buffer w_buf W
//	global step_size
//	ordered false
//	---
//	for (key, rv) in ratings
//	    ...
//	end
type Program struct {
	Env *Env
	// Globals lists driver variables declared with 'global' lines (the
	// programmer's statement of which inherited variables the driver
	// will provide; may be empty, in which case no unused-global lint
	// applies).
	Globals []string
	// LoopSrc is the raw loop source after the separator; LoopLine is
	// the 1-based file line the separator sits on, so loop positions
	// cite lines of the whole file.
	LoopSrc  string
	LoopLine int
	// Loop is the parsed loop.
	Loop *Loop
}

// ParseProgram parses a program file. Preamble problems yield
// *PreambleError; loop problems yield *SyntaxError with positions
// relative to the whole file.
func ParseProgram(src string) (*Program, error) {
	parts := strings.SplitN(src, "---", 2)
	if len(parts) != 2 {
		return nil, &PreambleError{Line: 1, Msg: "missing '---' separator between declarations and loop"}
	}
	p := &Program{Env: &Env{Arrays: map[string][]int64{}, Buffers: map[string]string{}}}
	bufferLine := map[string]int{}
	for lineNo, line := range strings.Split(parts[0], "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "array":
			if len(fields) < 3 {
				return nil, &PreambleError{Line: lineNo + 1, Msg: "array needs a name and at least one extent"}
			}
			dims := make([]int64, 0, len(fields)-2)
			for _, f := range fields[2:] {
				v, err := strconv.ParseInt(f, 10, 64)
				if err != nil || v <= 0 {
					return nil, &PreambleError{Line: lineNo + 1, Msg: fmt.Sprintf("bad extent %q (want a positive integer)", f)}
				}
				dims = append(dims, v)
			}
			p.Env.Arrays[fields[1]] = dims
		case "buffer":
			if len(fields) != 3 {
				return nil, &PreambleError{Line: lineNo + 1, Msg: "buffer needs a name and a target array"}
			}
			p.Env.Buffers[fields[1]] = fields[2]
			bufferLine[fields[1]] = lineNo + 1
		case "global":
			if len(fields) < 2 {
				return nil, &PreambleError{Line: lineNo + 1, Msg: "global needs at least one variable name"}
			}
			p.Globals = append(p.Globals, fields[1:]...)
		case "ordered":
			p.Env.Ordered = len(fields) > 1 && fields[1] == "true"
		default:
			return nil, &PreambleError{Line: lineNo + 1, Msg: fmt.Sprintf("unknown declaration %q (want array, buffer, global, or ordered)", fields[0])}
		}
	}
	// Buffer targets must be declared arrays (checked after the whole
	// preamble so order does not matter).
	for _, name := range sortedKeys(p.Env.Buffers) {
		target := p.Env.Buffers[name]
		if _, ok := p.Env.Arrays[target]; !ok {
			return nil, &PreambleError{Line: bufferLine[name], Msg: fmt.Sprintf("buffer %q targets unknown array %q", name, target)}
		}
	}
	p.LoopSrc = parts[1]
	p.LoopLine = 1 + strings.Count(parts[0], "\n")
	loop, err := ParseAt(p.LoopSrc, p.LoopLine)
	if err != nil {
		return nil, err
	}
	p.Loop = loop
	return p, nil
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out) // deterministic error attribution
	return out
}
