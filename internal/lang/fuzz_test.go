package lang

import (
	"strings"
	"testing"
)

// fuzzSeeds are real example programs: the corpus the fuzzer mutates.
var fuzzSeeds = []string{
	mfSrc,
	`for (key, v) in samples
    idx = floor(v * 100) + 1
    w = weights[idx]
    g = sigmoid(w * v) - 1
    w_buf[idx] += 0 - step_size * g
end
`,
	`for (key, v) in grid
    cur = A[key[1], key[2]]
    west = A[key[1], key[2] - 1]
    ne = A[key[1] - 1, key[2] + 1]
    A[key[1], key[2]] = 0.4 * cur + 0.35 * west + 0.25 * ne
end
`,
	`for (key, occ) in tokens
    p = zeros(K)
    total = 0
    for k = 1:K
        p[k] = (occ + alpha) / (total + 1)
        total = total + p[k]
    end
    if total > 1
        z[key[1], key[2]] = 1
    else
        z[key[1], key[2]] = 2
    end
end
`,
	`for (key, v) in xs
    err += v * v
end
`,
	"for (key, v) in data\nend\n",
	"for (key, v) in data\n    x = = 3\nend\n",
	"for key in data\nend\n",
	"",
}

// FuzzParse feeds arbitrary byte strings through the DSL front end. The
// invariants: the parser never panics, and any program it accepts
// round-trips — String() re-parses to an identical rendering (the
// property the DefineLoop wire protocol relies on).
func FuzzParse(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		loop, err := Parse(src)
		if err != nil {
			if _, ok := err.(*SyntaxError); !ok {
				t.Fatalf("Parse error %T is not *SyntaxError: %v", err, err)
			}
			return
		}
		printed := loop.String()
		back, err := Parse(printed)
		if err != nil {
			t.Fatalf("accepted program failed to re-parse: %v\noriginal: %q\nprinted: %q", err, src, printed)
		}
		if again := back.String(); again != printed {
			t.Fatalf("print/parse round-trip not stable:\nfirst:  %q\nsecond: %q", printed, again)
		}
	})
}

// FuzzParseProgram exercises the whole program-file front end
// (preamble + loop) the same way.
func FuzzParseProgram(f *testing.F) {
	f.Add("array data 10 10\n---\nfor (key, v) in data\n    x = v\nend\n")
	f.Add("array samples 100\narray hist 10\nbuffer h hist\nordered true\n---\nfor (key, v) in samples\n    h[1] += v\nend\n")
	f.Add("garbage\n---\nfor (key, v) in data\nend\n")
	f.Add("---")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := ParseProgram(src)
		if err != nil {
			switch err.(type) {
			case *SyntaxError, *PreambleError:
			default:
				t.Fatalf("ParseProgram error %T is not a typed front-end error: %v", err, err)
			}
			return
		}
		// An accepted program's loop positions must sit at or past the
		// separator line.
		if prog.Loop.At.Line > 0 && prog.Loop.At.Line < prog.LoopLine {
			t.Fatalf("loop position %d precedes the separator line %d", prog.Loop.At.Line, prog.LoopLine)
		}
		if !strings.Contains(src, "---") {
			t.Fatal("accepted a program with no separator")
		}
	})
}

// The execution differential fuzzer lives in internal/lang/vm
// (FuzzExecDifferential there), where it holds all three backends —
// interpreter, closure compiler, bytecode VM — to bitwise-identical
// results.
