package vm

import "math"

// exec runs the instruction stream once (one loop-body iteration).
// Register files and side tables are hoisted into locals; every case
// either advances pc or installs a jump target. Runtime faults panic
// with vmFault and are recovered by RunIteration/RunBlock.
func (k *Kernel) exec() {
	code := k.p.code
	consts := k.p.consts
	names := k.p.names
	infos := k.p.infos
	fr := k.fr
	vr := k.vr
	br := k.br
	ir := k.ir
	flDef := k.flDef
	glDef := k.glDef
	gl := k.gl
	key := k.key
	pc := 0
	for {
		in := &code[pc]
		switch in.op {
		case opHalt:
			return

		case opConstF:
			fr[in.a] = consts[in.b]
			pc++
		case opMovF:
			fr[in.a] = fr[in.b]
			pc++
		case opChkF:
			if !flDef[in.a] {
				fail("lang: undefined variable %q", names[in.b])
			}
			pc++
		case opDefF:
			flDef[in.a] = true
			pc++
		case opLoadG:
			if !glDef[in.b] {
				fail("lang: undefined variable %q", names[in.c])
			}
			fr[in.a] = gl[in.b]
			pc++
		case opStoreG:
			gl[in.a] = fr[in.b]
			glDef[in.a] = true
			pc++
		case opCompG:
			v := fr[in.b]
			if !glDef[in.a] {
				info := infos[in.d]
				fail("lang: %s of undefined variable %q", info.op, info.name)
			}
			gl[in.a] = arith(in.c, gl[in.a], v)
			pc++
		case opCompF:
			v := fr[in.b]
			if !flDef[in.a] {
				info := infos[in.d]
				fail("lang: %s of undefined variable %q", info.op, info.name)
			}
			fr[in.a] = arith(in.c, fr[in.a], v)
			pc++
		case opAddF:
			fr[in.a] = fr[in.b] + fr[in.c]
			pc++
		case opSubF:
			fr[in.a] = fr[in.b] - fr[in.c]
			pc++
		case opMulF:
			fr[in.a] = fr[in.b] * fr[in.c]
			pc++
		case opDivF:
			fr[in.a] = fr[in.b] / fr[in.c]
			pc++
		case opPowF:
			fr[in.a] = math.Pow(fr[in.b], fr[in.c])
			pc++
		case opNegF:
			fr[in.a] = -fr[in.b]
			pc++
		case opAbsF:
			fr[in.a] = math.Abs(fr[in.b])
			pc++
		case opAbs2F:
			v := fr[in.b]
			fr[in.a] = v * v
			pc++
		case opSqrtF:
			fr[in.a] = math.Sqrt(fr[in.b])
			pc++
		case opExpF:
			fr[in.a] = math.Exp(fr[in.b])
			pc++
		case opLogF:
			fr[in.a] = math.Log(fr[in.b])
			pc++
		case opFloorF:
			fr[in.a] = math.Floor(fr[in.b])
			pc++
		case opCeilF:
			fr[in.a] = math.Ceil(fr[in.b])
			pc++
		case opSigmoidF:
			fr[in.a] = 1 / (1 + math.Exp(-fr[in.b]))
			pc++
		case opMinF:
			// Same NaN behavior as the closure backend's
			// isMin == (av < bv) selection.
			av, bv := fr[in.b], fr[in.c]
			if av < bv {
				fr[in.a] = av
			} else {
				fr[in.a] = bv
			}
			pc++
		case opMaxF:
			av, bv := fr[in.b], fr[in.c]
			if av < bv {
				fr[in.a] = bv
			} else {
				fr[in.a] = av
			}
			pc++
		case opRandF:
			if k.rng == nil {
				fail("lang: rand() requires a Machine with an Rng")
			}
			fr[in.a] = k.rng.Float64()
			pc++
		case opKeyF:
			kk := int64(fr[in.b])
			if kk < 1 || int(kk) > len(key) {
				fail("lang: key subscript %d out of range", kk)
			}
			// DSL coordinates are 1-based.
			fr[in.a] = float64(key[kk-1] + 1)
			pc++
		case opKeyC:
			kk := in.b
			if kk < 1 || int(kk) > len(key) {
				fail("lang: key subscript %d out of range", int64(kk))
			}
			fr[in.a] = float64(key[kk-1] + 1)
			pc++
		case opLoadGU:
			fr[in.a] = gl[in.b]
			pc++
		case opArithFC:
			fr[in.a] = arith(in.d, fr[in.b], consts[in.c])
			pc++
		case opArithCF:
			fr[in.a] = arith(in.d, consts[in.c], fr[in.b])
			pc++
		case opArithFG:
			if in.e >= 0 && !glDef[in.c] {
				fail("lang: undefined variable %q", names[in.e])
			}
			av, bv := fr[in.b], gl[in.c]
			switch in.d {
			case selAdd:
				fr[in.a] = av + bv
			case selSub:
				fr[in.a] = av - bv
			case selMul:
				fr[in.a] = av * bv
			case selDiv:
				fr[in.a] = av / bv
			default:
				fr[in.a] = arith(in.d, av, bv)
			}
			pc++
		case opArithGF:
			if in.e >= 0 && !glDef[in.c] {
				fail("lang: undefined variable %q", names[in.e])
			}
			fr[in.a] = arith(in.d, gl[in.c], fr[in.b])
			pc++
		case opMinFC:
			av, bv := fr[in.b], consts[in.c]
			if av < bv {
				fr[in.a] = av
			} else {
				fr[in.a] = bv
			}
			pc++
		case opMaxFC:
			av, bv := fr[in.b], consts[in.c]
			if av < bv {
				fr[in.a] = bv
			} else {
				fr[in.a] = av
			}
			pc++
		case opVElemArith:
			i := int64(fr[in.e])
			vec := vr[in.c]
			if i < 1 || int(i) > len(vec) {
				fail("lang: vector subscript %d out of range", i)
			}
			av, bv := fr[in.b], vec[i-1]
			switch in.d {
			case selAdd:
				fr[in.a] = av + bv
			case selSub:
				fr[in.a] = av - bv
			case selMul:
				fr[in.a] = av * bv
			case selDiv:
				fr[in.a] = av / bv
			default:
				fr[in.a] = arith(in.d, av, bv)
			}
			pc++
		case opLenF:
			fr[in.a] = float64(len(vr[in.b]))
			pc++
		case opDotF:
			av := vr[in.b]
			bv := vr[in.c]
			if len(av) != len(bv) {
				fail("lang: dot needs two equal-length vectors")
			}
			var s float64
			for i := range av {
				s += av[i] * bv[i]
			}
			fr[in.a] = s
			pc++

		case opConstB:
			br[in.a] = in.b != 0
			pc++
		case opMovB:
			br[in.a] = br[in.b]
			pc++
		case opChkB:
			if !k.boDef[in.a] {
				fail("lang: undefined variable %q", names[in.b])
			}
			pc++
		case opDefB:
			k.boDef[in.a] = true
			pc++
		case opEqB:
			br[in.a] = fr[in.b] == fr[in.c]
			pc++
		case opNeB:
			br[in.a] = fr[in.b] != fr[in.c]
			pc++
		case opLtB:
			br[in.a] = fr[in.b] < fr[in.c]
			pc++
		case opLeB:
			br[in.a] = fr[in.b] <= fr[in.c]
			pc++
		case opGtB:
			br[in.a] = fr[in.b] > fr[in.c]
			pc++
		case opGeB:
			br[in.a] = fr[in.b] >= fr[in.c]
			pc++

		case opChkV:
			if !k.vecDef[in.a] {
				fail("lang: undefined variable %q", names[in.b])
			}
			pc++
		case opChkVElem:
			if !k.vecDef[in.a] {
				// The interpreter's lookup misses and the access falls
				// through to the (absent) array table.
				if in.c == selWrite {
					fail("lang: write to unknown array %q", names[in.b])
				}
				fail("lang: read of unknown array %q", names[in.b])
			}
			pc++
		case opDefV:
			k.vecDef[in.a] = true
			pc++
		case opMovV:
			vr[in.a] = vr[in.b]
			pc++
		case opVElemLd:
			i := int64(fr[in.c])
			vec := vr[in.b]
			if i < 1 || int(i) > len(vec) {
				fail("lang: vector subscript %d out of range", i)
			}
			fr[in.a] = vec[i-1]
			pc++
		case opVElemSt:
			i := int64(fr[in.b])
			vec := vr[in.a]
			if i < 1 || int(i) > len(vec) {
				fail("lang: vector subscript %d out of range", i)
			}
			if in.d < 0 {
				vec[i-1] = fr[in.c]
			} else {
				vec[i-1] = arith(in.d, vec[i-1], fr[in.c])
			}
			pc++
		case opVCompS:
			v := fr[in.b]
			if !k.vecDef[in.a] {
				info := infos[in.e]
				fail("lang: %s of undefined variable %q", info.op, info.name)
			}
			cur := vr[in.a]
			out := k.growScratch(int(in.d), len(cur))
			vecOpVS(in.c, out, cur, v)
			vr[in.a] = out
			pc++
		case opVCompV:
			rv := vr[in.b]
			if !k.vecDef[in.a] {
				info := infos[in.e]
				fail("lang: %s of undefined variable %q", info.op, info.name)
			}
			cur := vr[in.a]
			if len(cur) != len(rv) {
				fail("lang: vector length mismatch %d vs %d", len(cur), len(rv))
			}
			out := k.growScratch(int(in.d), len(cur))
			vecOpVV(in.c, out, cur, rv)
			vr[in.a] = out
			pc++
		case opVBinVV:
			lv := vr[in.b]
			rv := vr[in.c]
			if len(lv) != len(rv) {
				fail("lang: vector length mismatch %d vs %d", len(lv), len(rv))
			}
			out := k.growScratch(int(in.e), len(lv))
			vecOpVV(in.d, out, lv, rv)
			vr[in.a] = out
			pc++
		case opVBinVS:
			lv := vr[in.b]
			out := k.growScratch(int(in.e), len(lv))
			vecOpVS(in.d, out, lv, fr[in.c])
			vr[in.a] = out
			pc++
		case opVBinSV:
			rv := vr[in.c]
			out := k.growScratch(int(in.e), len(rv))
			vecOpSV(in.d, out, fr[in.b], rv)
			vr[in.a] = out
			pc++
		case opVNegV:
			v := vr[in.b]
			out := k.growScratch(int(in.c), len(v))
			for i, e := range v {
				out[i] = -e
			}
			vr[in.a] = out
			pc++
		case opZerosV:
			nf := fr[in.b]
			if k.vecLimit > 0 && nf > float64(k.vecLimit) {
				fail("lang: zeros(%g) exceeds the vector length limit %d", nf, k.vecLimit)
			}
			out := k.growScratch(int(in.c), int(nf))
			for i := range out {
				out[i] = 0
			}
			vr[in.a] = out
			pc++
		case opAxpyRow:
			ax := &k.p.axpys[in.d]
			lv := vr[in.b]
			s := fr[in.c]
			wv := vr[ax.w]
			if len(lv) != len(wv) {
				fail("lang: vector length mismatch %d vs %d", len(lv), len(wv))
			}
			out := k.growScratch(int(ax.sid), len(lv))
			// The float64 conversions round the products exactly as the
			// unfused closure pipeline does, keeping FMA-capable
			// architectures from fusing the multiply-add.
			if ax.sub {
				for i := range lv {
					out[i] = lv[i] - float64(s*wv[i])
				}
			} else {
				for i := range lv {
					out[i] = lv[i] + float64(s*wv[i])
				}
			}
			vr[in.a] = out
			pc++

		case opArrChk:
			if k.arrays[in.a] == nil {
				if in.c == selWrite {
					fail("lang: write to unknown array %q", names[in.b])
				}
				fail("lang: read of unknown array %q", names[in.b])
			}
			pc++
		case opLdPtF:
			// In-bounds dense point reads of the common ranks resolve
			// through the flattened runtime mirror; anything else takes
			// the ldPt slow path (reference panics included).
			ra := &k.racc[in.b]
			if off, ok := ptOff(fr, ra); ok {
				fr[in.a] = ra.data[off]
			} else {
				fr[in.a] = k.ldPt(&k.p.accs[in.b])
			}
			pc++
		case opLdPtMinC:
			ra := &k.racc[in.b]
			var av float64
			if off, ok := ptOff(fr, ra); ok {
				av = ra.data[off]
			} else {
				av = k.ldPt(&k.p.accs[in.b])
			}
			if bv := consts[in.c]; av < bv {
				fr[in.a] = av
			} else {
				fr[in.a] = bv
			}
			pc++
		case opLdPtMaxC:
			ra := &k.racc[in.b]
			var av float64
			if off, ok := ptOff(fr, ra); ok {
				av = ra.data[off]
			} else {
				av = k.ldPt(&k.p.accs[in.b])
			}
			if bv := consts[in.c]; av < bv {
				fr[in.a] = bv
			} else {
				fr[in.a] = av
			}
			pc++
		case opStPtF:
			ra := &k.racc[in.a]
			if off, ok := ptOff(fr, ra); ok {
				data := ra.data
				switch in.c {
				case -1:
					data[off] = fr[in.b]
				case selAdd:
					data[off] += fr[in.b]
				case selSub:
					data[off] -= fr[in.b]
				case selMul:
					data[off] *= fr[in.b]
				case selDiv:
					data[off] /= fr[in.b]
				default:
					data[off] = arith(in.c, data[off], fr[in.b])
				}
			} else {
				k.stPt(&k.p.accs[in.a], fr[in.b], in.c)
			}
			pc++
		case opStPtC:
			ra := &k.racc[in.a]
			if off, ok := ptOff(fr, ra); ok {
				data := ra.data
				switch in.c {
				case -1:
					data[off] = consts[in.b]
				case selAdd:
					data[off] += consts[in.b]
				case selSub:
					data[off] -= consts[in.b]
				case selMul:
					data[off] *= consts[in.b]
				case selDiv:
					data[off] /= consts[in.b]
				default:
					data[off] = arith(in.c, data[off], consts[in.b])
				}
			} else {
				k.stPt(&k.p.accs[in.a], consts[in.b], in.c)
			}
			pc++
		case opRowViewV:
			vr[in.a] = k.rowView(&k.p.accs[in.b])
			pc++
		case opRowMatV:
			vr[in.a] = k.rowMat(&k.p.accs[in.b])
			pc++
		case opRowStV:
			k.rowSt(&k.p.accs[in.a], vr[in.b])
			pc++
		case opRowUpdS:
			k.rowUpd(&k.p.accs[in.a], fr[in.b], nil, false)
			pc++
		case opRowUpdV:
			k.rowUpd(&k.p.accs[in.a], 0, vr[in.b], true)
			pc++
		case opBufChk:
			if k.buffers[in.a] == nil {
				fail("lang: write to unknown array %q", names[in.b])
			}
			pc++
		case opBufPut:
			k.bufPut(&k.p.baccs[in.a], fr[in.b])
			pc++
		case opBufPutC:
			k.bufPut(&k.p.baccs[in.a], consts[in.b])
			pc++

		case opJmp:
			pc = int(in.a)
		case opJmpIfNot:
			if br[in.b] {
				pc++
			} else {
				pc = int(in.a)
			}
		case opJmpCmpNot:
			l := fr[in.b]
			var r float64
			if in.e != 0 {
				r = consts[in.c]
			} else {
				r = fr[in.c]
			}
			var taken bool
			switch in.d {
			case cmpEq:
				taken = l == r
			case cmpNe:
				taken = l != r
			case cmpLt:
				taken = l < r
			case cmpLe:
				taken = l <= r
			case cmpGt:
				taken = l > r
			default:
				taken = l >= r
			}
			if taken {
				pc++
			} else {
				pc = int(in.a)
			}
		case opForInit:
			if in.d&1 != 0 {
				ir[2*in.a] = int64(consts[in.b])
			} else {
				ir[2*in.a] = int64(fr[in.b])
			}
			if in.d&2 != 0 {
				ir[2*in.a+1] = int64(consts[in.c])
			} else {
				ir[2*in.a+1] = int64(fr[in.c])
			}
			pc++
		case opForCond:
			v := ir[2*in.a]
			if v > ir[2*in.a+1] {
				pc = int(in.c)
			} else {
				if k.budget != 0 {
					k.budget--
					if k.budget == 0 {
						fail("lang: step budget exhausted")
					}
				}
				fr[in.b] = float64(v)
				flDef[in.b] = true
				pc++
			}
		case opForNext:
			// Fused back-edge: re-check the bound, spend the budget, and
			// bind the loop variable exactly as opForCond would, without
			// a second dispatch through the loop head.
			v := ir[2*in.a] + 1
			ir[2*in.a] = v
			if v > ir[2*in.a+1] {
				pc = int(in.c)
			} else {
				if k.budget != 0 {
					k.budget--
					if k.budget == 0 {
						fail("lang: step budget exhausted")
					}
				}
				fr[in.d] = float64(v)
				flDef[in.d] = true
				pc = int(in.b)
			}

		case opLdPt2C:
			// Both loads run in the unfused order, so a fault from the
			// first access fires before the second load executes.
			f := &k.p.fused[in.b]
			ra := &k.racc[f.b1]
			var av float64
			if off, ok := ptOff(fr, ra); ok {
				av = ra.data[off]
			} else {
				av = k.ldPt(&k.p.accs[f.b1])
			}
			if bv := consts[f.c1]; (av < bv) == (f.d1 != 0) {
				av = bv
			}
			fr[f.a1] = av
			ra = &k.racc[f.b2]
			if off, ok := ptOff(fr, ra); ok {
				av = ra.data[off]
			} else {
				av = k.ldPt(&k.p.accs[f.b2])
			}
			if bv := consts[f.c2]; (av < bv) == (f.d2 != 0) {
				av = bv
			}
			fr[f.a2] = av
			pc++
		case opAddG2Mul:
			f := &k.p.fused[in.b]
			if f.c1 >= 0 && !glDef[f.b1] {
				fail("lang: undefined variable %q", names[f.c1])
			}
			t1 := fr[f.a1] + gl[f.b1]
			if f.c2 >= 0 && !glDef[f.b2] {
				fail("lang: undefined variable %q", names[f.c2])
			}
			fr[in.a] = t1 * (fr[f.a2] + gl[f.b2])
			pc++
		case opAddGDivR:
			if in.e >= 0 && !glDef[in.c] {
				fail("lang: undefined variable %q", names[in.e])
			}
			fr[in.a] = fr[in.d] / (fr[in.b] + gl[in.c])
			pc++
		case opVStAdd:
			i := int64(fr[in.b])
			vec := vr[in.a]
			if i < 1 || int(i) > len(vec) {
				fail("lang: vector subscript %d out of range", i)
			}
			v := fr[in.c]
			vec[i-1] = v
			fr[in.d] = fr[in.e] + v
			pc++

		default:
			fail("lang: vm: invalid opcode %d at pc %d", in.op, pc)
		}
	}
}

// vecOpVV applies out[i] = l[i] op r[i]; the selector switch stays
// outside the loop. Slices may alias base-aligned (shared scratch), in
// which case forward elementwise application matches the closure
// backend exactly.
func vecOpVV(sel int32, out, l, r []float64) {
	switch sel {
	case selAdd:
		for i := range l {
			out[i] = l[i] + r[i]
		}
	case selSub:
		for i := range l {
			out[i] = l[i] - r[i]
		}
	case selMul:
		for i := range l {
			out[i] = l[i] * r[i]
		}
	case selDiv:
		for i := range l {
			out[i] = l[i] / r[i]
		}
	default:
		for i := range l {
			out[i] = math.Pow(l[i], r[i])
		}
	}
}

func vecOpVS(sel int32, out, l []float64, r float64) {
	switch sel {
	case selAdd:
		for i := range l {
			out[i] = l[i] + r
		}
	case selSub:
		for i := range l {
			out[i] = l[i] - r
		}
	case selMul:
		for i := range l {
			out[i] = l[i] * r
		}
	case selDiv:
		for i := range l {
			out[i] = l[i] / r
		}
	default:
		for i := range l {
			out[i] = math.Pow(l[i], r)
		}
	}
}

func vecOpSV(sel int32, out []float64, l float64, r []float64) {
	switch sel {
	case selAdd:
		for i := range r {
			out[i] = l + r[i]
		}
	case selSub:
		for i := range r {
			out[i] = l - r[i]
		}
	case selMul:
		for i := range r {
			out[i] = l * r[i]
		}
	case selDiv:
		for i := range r {
			out[i] = l / r[i]
		}
	default:
		for i := range r {
			out[i] = math.Pow(l, r[i])
		}
	}
}

// fillIx converts the point-subscript registers of acc into its index
// buffer (0-based), skipping the range dimension.
func (k *Kernel) fillIx(acc *access) []int64 {
	ix := k.idx[acc.ii]
	for d, sr := range acc.subs {
		if int32(d) == acc.rangeDim {
			continue
		}
		ix[d] = int64(k.fr[sr]) - 1
	}
	return ix
}

// rangeBounds returns the 0-based inclusive range bounds.
func (k *Kernel) rangeBounds(acc *access) (lo, hi int64) {
	if acc.full {
		return 0, acc.extent - 1
	}
	return int64(k.fr[acc.loReg]) - 1, int64(k.fr[acc.hiReg]) - 1
}

// rangeInBounds reports whether every element the range touches is in
// bounds, so the bulk path can skip per-element checks. Anything else
// (including empty ranges) takes the At/SetAt path whose panics are the
// reference behavior.
func rangeInBounds(acc *access, ix []int64, lo, hi int64) bool {
	rd := int(acc.rangeDim)
	if lo > hi || lo < 0 || hi >= acc.dims[rd] {
		return false
	}
	for d, v := range ix {
		if d == rd {
			continue
		}
		if v < 0 || v >= acc.dims[d] {
			return false
		}
	}
	return true
}

// restOffset sums the non-range coordinate offsets.
func restOffset(ix []int64, stride []int64, rd int) int64 {
	var off int64
	for d, v := range ix {
		if d == rd {
			continue
		}
		off += v * stride[d]
	}
	return off
}

// ldPt is SubscriptLoadF: a fused point read. In-bounds dense accesses
// go straight to flat storage; everything else goes through At, whose
// panic is the reference out-of-bounds behavior.
func (k *Kernel) ldPt(acc *access) float64 {
	ix := k.fillIx(acc)
	if data := k.dense[acc.ai]; data != nil {
		stride := k.stride[acc.ai]
		off := int64(0)
		ok := true
		for d, v := range ix {
			if v < 0 || v >= acc.dims[d] {
				ok = false
				break
			}
			off += v * stride[d]
		}
		if ok {
			return data[off]
		}
	}
	return k.arrays[acc.ai].At(ix...)
}

// stPt is SubscriptStoreF: a fused point write, plain (sel < 0) or
// compound.
func (k *Kernel) stPt(acc *access, v float64, sel int32) {
	ix := k.fillIx(acc)
	if data := k.dense[acc.ai]; data != nil {
		stride := k.stride[acc.ai]
		off := int64(0)
		ok := true
		for d, c := range ix {
			if c < 0 || c >= acc.dims[d] {
				ok = false
				break
			}
			off += c * stride[d]
		}
		if ok {
			if sel >= 0 {
				data[off] = arith(sel, data[off], v)
			} else {
				data[off] = v
			}
			return
		}
	}
	a := k.arrays[acc.ai]
	if sel >= 0 {
		v = arith(sel, a.At(ix...), v)
	}
	a.SetAt(v, ix...)
}

// rowView is the zero-copy consume borrow of a full first-dimension
// range: dense arrays return a live slice of their flat storage (the
// @view of the paper's Fig. 5); out-of-bounds trailing coordinates and
// non-dense arrays fall back to element-wise At with the exact
// reference panics and copies.
func (k *Kernel) rowView(acc *access) []float64 {
	a := k.arrays[acc.ai]
	if data := k.dense[acc.ai]; data != nil {
		stride := k.stride[acc.ai]
		ix := k.idx[acc.ri]
		var off int64
		inBounds := true
		for d, sr := range acc.subs[1:] {
			v := int64(k.fr[sr]) - 1
			ix[d] = v
			if v < 0 || v >= acc.dims[d+1] {
				inBounds = false
			} else {
				off += v * stride[d+1]
			}
		}
		if inBounds {
			return data[off : off+acc.extent]
		}
		// Out of bounds: take the element-wise path so the panic
		// matches the interpreter's At-based read.
		full := k.idx[acc.ii]
		copy(full[1:], ix)
		out := k.growScratch(int(acc.sid), int(acc.extent))
		for v := int64(0); v < acc.extent; v++ {
			full[0] = v
			out[v] = a.At(full...)
		}
		return out
	}
	// Bound but not dense: materialize element-wise like the closure
	// backend's generic path. The trailing coordinates were already
	// evaluated into registers, so fillIx only converts.
	ix := k.fillIx(acc)
	out := k.growScratch(int(acc.sid), int(acc.extent))
	for v := int64(0); v < acc.extent; v++ {
		ix[0] = v
		out[v] = a.At(ix...)
	}
	return out
}

// rowMat materializes a range read into the site's scratch. Fully
// in-bounds dense ranges are copied in bulk; everything else reads
// element-wise through At.
func (k *Kernel) rowMat(acc *access) []float64 {
	a := k.arrays[acc.ai]
	ix := k.fillIx(acc)
	lo, hi := k.rangeBounds(acc)
	out := k.growScratch(int(acc.sid), int(hi-lo+1))
	rd := int(acc.rangeDim)
	if data := k.dense[acc.ai]; data != nil && rangeInBounds(acc, ix, lo, hi) {
		stride := k.stride[acc.ai]
		off := restOffset(ix, stride, rd)
		step := stride[rd]
		if step == 1 {
			copy(out, data[off+lo:off+hi+1])
		} else {
			base := off + lo*step
			for i := range out {
				out[i] = data[base]
				base += step
			}
		}
		return out
	}
	for v := lo; v <= hi; v++ {
		ix[rd] = v
		out[v-lo] = a.At(ix...)
	}
	return out
}

// rowSt is a plain range store.
func (k *Kernel) rowSt(acc *access, rv []float64) {
	a := k.arrays[acc.ai]
	ix := k.fillIx(acc)
	lo, hi := k.rangeBounds(acc)
	if int64(len(rv)) != hi-lo+1 {
		fail("lang: %s: vector length %d does not match range %d:%d",
			k.p.names[acc.nameIdx], len(rv), lo+1, hi+1)
	}
	rd := int(acc.rangeDim)
	if data := k.dense[acc.ai]; data != nil && rangeInBounds(acc, ix, lo, hi) {
		stride := k.stride[acc.ai]
		off := restOffset(ix, stride, rd)
		step := stride[rd]
		if step == 1 {
			copy(data[off+lo:off+hi+1], rv)
		} else {
			base := off + lo*step
			for i := range rv {
				data[base] = rv[i]
				base += step
			}
		}
		return
	}
	for v := lo; v <= hi; v++ {
		ix[rd] = v
		a.SetAt(rv[v-lo], ix...)
	}
}

// rowUpd is a compound range update: read all current values into the
// site's scratch, apply, write all back — the same copy-then-write
// order as both reference backends.
func (k *Kernel) rowUpd(acc *access, sv float64, rv []float64, isVec bool) {
	a := k.arrays[acc.ai]
	ix := k.fillIx(acc)
	lo, hi := k.rangeBounds(acc)
	cur := k.growScratch(int(acc.sid), int(hi-lo+1))
	rd := int(acc.rangeDim)
	data := k.dense[acc.ai]
	bulk := data != nil && rangeInBounds(acc, ix, lo, hi)
	var base, step int64
	if bulk {
		stride := k.stride[acc.ai]
		step = stride[rd]
		base = restOffset(ix, stride, rd) + lo*step
		if step == 1 {
			copy(cur, data[base:base+int64(len(cur))])
		} else {
			b := base
			for i := range cur {
				cur[i] = data[b]
				b += step
			}
		}
	} else {
		for v := lo; v <= hi; v++ {
			ix[rd] = v
			cur[v-lo] = a.At(ix...)
		}
	}
	if isVec {
		if len(cur) != len(rv) {
			fail("lang: vector length mismatch %d vs %d", len(cur), len(rv))
		}
		vecOpVV(acc.sel, cur, cur, rv)
	} else {
		vecOpVS(acc.sel, cur, cur, sv)
	}
	if bulk {
		if step == 1 {
			copy(data[base:base+int64(len(cur))], cur)
		} else {
			b := base
			for i := range cur {
				data[b] = cur[i]
				b += step
			}
		}
		return
	}
	for v := lo; v <= hi; v++ {
		ix[rd] = v
		a.SetAt(cur[v-lo], ix...)
	}
}

func (k *Kernel) bufPut(ba *bufAccess, v float64) {
	if ba.neg {
		v = -v
	}
	ix := k.idx[ba.ii]
	for d, sr := range ba.subs {
		ix[d] = int64(k.fr[sr]) - 1
	}
	k.buffers[ba.bi].Put(v, ix...)
}
