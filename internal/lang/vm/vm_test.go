package vm

import (
	"math"
	"math/rand"
	"testing"

	"orion/internal/dsm"
	"orion/internal/lang"
)

const mfSrc = `
for (key, rv) in ratings
    W_row = W[:, key[1]]
    H_row = H[:, key[2]]
    pred = dot(W_row, H_row)
    diff = rv - pred
    W_grad = -2 * diff * H_row
    H_grad = -2 * diff * W_row
    W[:, key[1]] = W_row - step_size * W_grad
    H[:, key[2]] = H_row - step_size * H_grad
end
`

func compileMF(t testing.TB) *Prog {
	t.Helper()
	loop, err := lang.Parse(mfSrc)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(loop, &lang.CompileEnv{
		Arrays: map[string][]int64{
			"ratings": {100, 100}, "W": {16, 100}, "H": {16, 100},
		},
		Globals: []string{"step_size"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func bindMF(t testing.TB, p *Prog) (*Kernel, *dsm.DistArray, *dsm.DistArray) {
	t.Helper()
	k := p.NewKernel()
	w := dsm.NewDense("W", 16, 100)
	h := dsm.NewDense("H", 16, 100)
	w.FillRandn(rand.New(rand.NewSource(1)), 0.1)
	h.FillRandn(rand.New(rand.NewSource(2)), 0.1)
	for name, a := range map[string]*dsm.DistArray{
		"ratings": dsm.NewSparse("ratings", 100, 100), "W": w, "H": h,
	} {
		if err := k.BindArray(name, a); err != nil {
			t.Fatal(err)
		}
	}
	if !k.SetGlobal("step_size", 0.01) {
		t.Fatal("step_size not a global")
	}
	return k, w, h
}

// TestVMZeroAllocs: the acceptance criterion — a steady-state VM MF SGD
// iteration performs zero allocations, both per-iteration and batched.
func TestVMZeroAllocs(t *testing.T) {
	p := compileMF(t)
	k, _, _ := bindMF(t, p)
	key := []int64{3, 7}
	for i := 0; i < 4; i++ {
		if err := k.RunIteration(key, 1.5); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := k.RunIteration(key, 1.5); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("vm MF iteration allocates %v times, want 0", allocs)
	}

	keys := [][]int64{{3, 7}, {4, 9}, {1, 2}, {3, 7}}
	vals := []float64{1.5, 2, 0.5, 1.5}
	allocs = testing.AllocsPerRun(200, func() {
		if n, err := k.RunBlock(keys, vals, nil); err != nil || n != len(keys) {
			t.Fatalf("RunBlock: n=%d err=%v", n, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("vm MF block allocates %v times, want 0", allocs)
	}
}

// TestVMSpeedupOverClosure: the VM's fused dense paths must beat the
// closure backend on the MF body. The committed BENCH_vm.json gate
// asserts >= 2x; here we assert a conservative 1.3x so CI noise cannot
// flake a unit test that runs on every push.
func TestVMSpeedupOverClosure(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	loop, err := lang.Parse(mfSrc)
	if err != nil {
		t.Fatal(err)
	}
	cenv := &lang.CompileEnv{
		Arrays: map[string][]int64{
			"ratings": {100, 100}, "W": {16, 100}, "H": {16, 100},
		},
		Globals: []string{"step_size"},
	}
	cl, err := lang.CompileLoop(loop, cenv)
	if err != nil {
		t.Fatal(err)
	}
	ck := cl.NewKernel()
	p := compileMF(t)
	vk, _, _ := bindMF(t, p)
	for name, dims := range cenv.Arrays {
		var a *dsm.DistArray
		if name == "ratings" {
			a = dsm.NewSparse(name, dims...)
		} else {
			a = dsm.NewDense(name, dims...)
		}
		if err := ck.BindArray(name, a); err != nil {
			t.Fatal(err)
		}
	}
	ck.SetGlobal("step_size", 0.01)
	key := []int64{3, 7}

	vmRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := vk.RunIteration(key, 1.5); err != nil {
				b.Fatal(err)
			}
		}
	})
	clRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := ck.RunIteration(key, 1.5); err != nil {
				b.Fatal(err)
			}
		}
	})
	vn, cn := vmRes.NsPerOp(), clRes.NsPerOp()
	if vn <= 0 || cn <= 0 {
		t.Skipf("timer resolution too coarse: vm %d ns, closure %d ns", vn, cn)
	}
	if float64(cn) < 1.3*float64(vn) {
		t.Fatalf("vm backend is not >=1.3x faster: closure %d ns/iter, vm %d ns/iter", cn, vn)
	}
	t.Logf("closure %d ns/iter, vm %d ns/iter (%.1fx)", cn, vn, float64(cn)/float64(vn))
}

// TestRunBlockStopsAtFault: a mid-block fault reports the number of
// fully completed iterations and leaves their effects in place.
func TestRunBlockStopsAtFault(t *testing.T) {
	loop, err := lang.Parse("for (key, v) in data\n    A[key[1], 1] = v\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(loop, &lang.CompileEnv{
		Arrays: map[string][]int64{"data": {4, 4}, "A": {4, 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	k := p.NewKernel()
	a := dsm.NewDense("A", 4, 4)
	if err := k.BindArray("A", a); err != nil {
		t.Fatal(err)
	}
	if err := k.BindArray("data", dsm.NewDense("data", 4, 4)); err != nil {
		t.Fatal(err)
	}
	// Third key is out of bounds: iteration 2 panics after 0 and 1 land.
	keys := [][]int64{{0, 0}, {1, 0}, {9, 0}, {2, 0}}
	vals := []float64{10, 20, 30, 40}
	// The panic unwinds through RunBlock, so progress is observed via
	// the onIter callback rather than the (lost) return value.
	var done int
	var panicked bool
	func() {
		defer func() {
			if r := recover(); r != nil {
				panicked = true
			}
		}()
		_, _ = k.RunBlock(keys, vals, func(i int) { done = i + 1 })
	}()
	if !panicked {
		t.Fatal("expected the out-of-bounds write to panic")
	}
	if done != 2 {
		t.Fatalf("done = %d, want 2", done)
	}
	if a.At(0, 0) != 10 || a.At(1, 0) != 20 {
		t.Fatalf("completed iterations not applied: %v %v", a.At(0, 0), a.At(1, 0))
	}
}

// TestRunBlockOnIter: the per-iteration callback observes accumulator
// state after each iteration, in order.
func TestRunBlockOnIter(t *testing.T) {
	loop, err := lang.Parse("for (key, v) in data\n    acc += v\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(loop, &lang.CompileEnv{
		Arrays:  map[string][]int64{"data": {4}},
		Globals: []string{"acc"},
	})
	if err != nil {
		t.Fatal(err)
	}
	k := p.NewKernel()
	if err := k.BindArray("data", dsm.NewDense("data", 4)); err != nil {
		t.Fatal(err)
	}
	k.SetGlobal("acc", 0)
	slot := k.GlobalSlot("acc")
	keys := [][]int64{{0}, {1}, {2}}
	vals := []float64{1, 2, 4}
	var seen []float64
	done, err := k.RunBlock(keys, vals, func(i int) {
		seen = append(seen, k.GlobalAt(slot))
	})
	if err != nil || done != 3 {
		t.Fatalf("done=%d err=%v", done, err)
	}
	want := []float64{1, 3, 7}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("after iteration %d acc=%v, want %v", i, seen[i], want[i])
		}
	}
}

// TestVMRowViewIsZeroCopy: a consume borrow of a dense full-first-dim
// range must be a live view of the array's storage, not a copy.
func TestVMRowViewIsZeroCopy(t *testing.T) {
	src := "for (key, v) in data\n    s = dot(W[:, 1], W[:, 1])\n    acc += s\nend\n"
	loop, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(loop, &lang.CompileEnv{
		Arrays:  map[string][]int64{"data": {2}, "W": {8, 4}},
		Globals: []string{"acc"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The lowered site must use the row-view opcode, not materialize.
	views := 0
	for _, in := range p.code {
		if in.op == opRowViewV {
			views++
		}
	}
	if views != 2 {
		t.Fatalf("expected 2 opRowViewV sites, found %d", views)
	}
	k := p.NewKernel()
	w := dsm.NewDense("W", 8, 4)
	w.FillRandn(rand.New(rand.NewSource(3)), 1)
	if err := k.BindArray("W", w); err != nil {
		t.Fatal(err)
	}
	if err := k.BindArray("data", dsm.NewDense("data", 2)); err != nil {
		t.Fatal(err)
	}
	k.SetGlobal("acc", 0)
	if err := k.RunIteration([]int64{0}, 0); err != nil {
		t.Fatal(err)
	}
	// DSL subscripts are 1-based: W[:, 1] is the 0-based column 0.
	var want float64
	col := w.Vec(0)
	for _, e := range col {
		want += e * e
	}
	got, _ := k.Global("acc")
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("acc = %v, want %v", got, want)
	}
}

// TestVMSparseFallback: arrays without dense backing run through the
// interface paths and still match the interpreter (covered broadly by
// the differential tests; this pins the explicit sparse binding).
func TestVMSparseFallback(t *testing.T) {
	src := "for (key, v) in data\n    S[key[1], 1] += 2\n    x = S[key[1], 1]\n    acc += x\nend\n"
	loop, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(loop, &lang.CompileEnv{
		Arrays:  map[string][]int64{"data": {3}, "S": {3, 3}},
		Globals: []string{"acc"},
	})
	if err != nil {
		t.Fatal(err)
	}
	k := p.NewKernel()
	s := dsm.NewSparse("S", 3, 3)
	if err := k.BindArray("S", s); err != nil {
		t.Fatal(err)
	}
	if err := k.BindArray("data", dsm.NewDense("data", 3)); err != nil {
		t.Fatal(err)
	}
	k.SetGlobal("acc", 0)
	for i := int64(0); i < 3; i++ {
		if err := k.RunIteration([]int64{i}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got, _ := k.Global("acc"); got != 6 {
		t.Fatalf("acc = %v, want 6", got)
	}
	if s.At(2, 0) != 2 {
		t.Fatalf("S[2,0] = %v, want 2", s.At(2, 0))
	}
}

// TestVMRunLoop: RunLoop walks the bound iteration space like the
// closure backend, stopping early on error when supported.
func TestVMRunLoop(t *testing.T) {
	loop, err := lang.Parse("for (key, v) in data\n    acc += v\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(loop, &lang.CompileEnv{
		Arrays:  map[string][]int64{"data": {4}},
		Globals: []string{"acc"},
	})
	if err != nil {
		t.Fatal(err)
	}
	k := p.NewKernel()
	d := dsm.NewDense("data", 4)
	d.MapIndex(func(idx []int64, _ float64) float64 { return float64(idx[0] + 1) })
	if err := k.BindArray("data", d); err != nil {
		t.Fatal(err)
	}
	k.SetGlobal("acc", 0)
	if err := k.RunLoop(); err != nil {
		t.Fatal(err)
	}
	if got, _ := k.Global("acc"); got != 10 {
		t.Fatalf("acc = %v, want 10", got)
	}
}
