package vm

import (
	"testing"

	"orion/internal/lang"
)

// FuzzExecDifferential: any program that parses and analyzes clean and
// falls inside the compiled subset must behave bitwise-identically
// under the interpreter, the closure compiler, and the bytecode VM —
// same stop point, same error or panic, same DistArray and global
// values — and the two compiled backends must agree exactly on what is
// compilable. Seeded with the full shipped example corpus.
func FuzzExecDifferential(f *testing.F) {
	for _, src := range exampleProgramSources(f) {
		f.Add(src)
	}
	f.Add("array data 6 4\narray A 4 4\nbuffer b A\nglobal g\n---\nfor (key, v) in data\n    p = A[:, key[2]]\n    s = dot(p, p)\n    if s > g\n        A[:, key[2]] = p - 0.5 * p\n    end\n    b[key[2], 1] += s\n    acc += s\nend\n")
	f.Add("array data 4 4\narray A 4 4\nglobal g\n---\nfor (key, v) in data\n    p = A[:, key[2]]\n    A[:, key[2]] = p - g * p\n    A[key[1], 2:3] += p[1]\nend\n")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := lang.ParseProgram(src)
		if err != nil {
			return
		}
		if _, err := lang.Analyze(prog.Loop, prog.Env); err != nil {
			return
		}
		// Bound the execution: small arrays only, few iterations, a
		// step budget for runaway inner loops, and a vector length cap.
		total := int64(0)
		for _, dims := range prog.Env.Arrays {
			if len(dims) > 3 {
				return
			}
			n := int64(1)
			for _, d := range dims {
				n *= d
			}
			total += n
		}
		if total > 1<<15 {
			return
		}
		cfg := diffConfig{
			scheme:   fillInts,
			seed:     11,
			budget:   1 << 14,
			vecLimit: 1 << 10,
			maxIters: 128,
		}
		diffProgram(t, "fuzz program:\n"+src, prog, cfg)
	})
}
