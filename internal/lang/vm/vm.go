// Package vm is the register-bytecode backend for DSL loop bodies: the
// slot-resolved AST (lang.ResolveLoop) is lowered to a compact
// instruction stream executed by a switch dispatcher over flat register
// files. It sits between the tree-walking interpreter (the reference
// semantics) and the closure compiler: the same compiled subset, the
// same runtime-error messages, bitwise-identical results — but fused
// subscript ops (SubscriptLoadF/SubscriptStoreF, row view/store,
// AxpyRow, DotRows) operate on dense array storage through flat offset
// arithmetic (lang.DenseAccess) instead of per-element interface calls,
// and RunBlock executes a run of consecutive iterations without
// re-entering the dispatch preamble per element.
//
// Differential tests in this package hold all three backends to
// bitwise-identical DistArray, accumulator, and error results.
package vm

import (
	"fmt"
	"math"

	"orion/internal/lang"
)

type opcode uint16

// One instruction: an opcode plus up to five register/table operands.
// Register operands index the per-kind register files (fr/vr/br/ir);
// table operands index Prog side tables (consts, names, infos, accs,
// baccs, axpys) or hold jump targets.
type instr struct {
	op            opcode
	a, b, c, d, e int32
}

const (
	opHalt opcode = iota

	// Scalar ops: operands are fr registers unless noted.
	opConstF // fr[a] = consts[b]
	opMovF   // fr[a] = fr[b]
	opChkF   // fault unless flDef[a]; names[b]
	opDefF   // flDef[a] = true
	opLoadG  // fr[a] = gl[b], fault unless glDef[b]; names[c]
	opStoreG // gl[a] = fr[b]; glDef[a] = true
	opCompG  // gl[a] = arith(c, gl[a], fr[b]), fault unless glDef[a]; infos[d]
	opCompF  // fl local compound, same layout as opCompG
	opAddF   // fr[a] = fr[b] + fr[c]
	opSubF
	opMulF
	opDivF
	opPowF
	opNegF // fr[a] = -fr[b]
	opAbsF // fr[a] = fn(fr[b]), one opcode per builtin
	opAbs2F
	opSqrtF
	opExpF
	opLogF
	opFloorF
	opCeilF
	opSigmoidF
	opMinF // fr[a] = min(fr[b], fr[c]) with the closure backend's NaN order
	opMaxF
	opRandF // fr[a] = rng.Float64()
	opKeyF  // fr[a] = float64(key[int64(fr[b])-1] + 1)
	opLenF  // fr[a] = float64(len(vr[b]))
	opDotF  // fr[a] = dot(vr[b], vr[c])  (DotRows)

	// Fused scalar superinstructions. The lowering emits these for the
	// hot register/constant/global operand shapes of scalar-heavy inner
	// loops (one dispatch instead of two); each is bitwise-identical to
	// the unfused pair it replaces, including fault order and messages.
	opKeyC       // fr[a] = float64(key[b-1] + 1), literal 1-based subscript b
	opLoadGU     // fr[a] = gl[b], definedness proven by a dominating load/store
	opArithFC    // fr[a] = arith(d, fr[b], consts[c])
	opArithCF    // fr[a] = arith(d, consts[c], fr[b])
	opArithFG    // fr[a] = arith(d, fr[b], gl[c]); e >= 0 checks glDef[c] (names[e])
	opArithGF    // fr[a] = arith(d, gl[c], fr[b]); e >= 0 checks glDef[c] (names[e])
	opMinFC      // fr[a] = min(fr[b], consts[c])
	opMaxFC      // fr[a] = max(fr[b], consts[c])
	opVElemArith // fr[a] = arith(d, fr[b], vr[c][int64(fr[e])-1]) with bounds fault
	opLdPtMinC   // fr[a] = min(point load accs[b], consts[c])
	opLdPtMaxC   // fr[a] = max(point load accs[b], consts[c])

	// Boolean ops: a is a br register.
	opConstB // br[a] = (b != 0)
	opMovB   // br[a] = br[b]
	opChkB   // fault unless boDef[a]; names[b]
	opDefB   // boDef[a] = true
	opEqB    // br[a] = fr[b] == fr[c]
	opNeB
	opLtB
	opLeB
	opGtB
	opGeB

	// Vector ops: a is a vr register unless noted.
	opChkV     // fault unless vecDef[a]; names[b]
	opChkVElem // fault unless vecDef[a]; names[b], c selects the read/write message
	opDefV     // vecDef[a] = true
	opMovV     // vr[a] = vr[b] (header copy)
	opVElemLd  // fr[a] = vr[b][int64(fr[c])-1] with 1-based bounds fault
	opVElemSt  // vr[a][int64(fr[b])-1] op(d)= fr[c]; d < 0 is plain store
	opVCompS   // vec local a op(c)= scalar fr[b], scratch d, infos[e]
	opVCompV   // vec local a op(c)= vr[b], scratch d, infos[e]
	opVBinVV   // vr[a] = vr[b] op(d) vr[c], scratch e
	opVBinVS   // vr[a] = vr[b] op(d) fr[c], scratch e
	opVBinSV   // vr[a] = fr[b] op(d) vr[c], scratch e
	opVNegV    // vr[a] = -vr[b], scratch c
	opZerosV   // vr[a] = zeros(fr[b]), scratch c
	opAxpyRow  // vr[a] = vr[b] ± fr[c]*vr[w] fused, axpys[d]

	// Array and buffer ops.
	opArrChk   // fault unless arrays[a] != nil; names[b], c selects read/write
	opLdPtF    // fr[a] = point load through accs[b]  (SubscriptLoadF)
	opStPtF    // point store accs[a] <- fr[b], arith c (< 0 plain)  (SubscriptStoreF)
	opStPtC    // point store accs[a] <- consts[b], arith c (< 0 plain)
	opRowViewV // vr[a] = zero-copy consume borrow of accs[b]
	opRowMatV  // vr[a] = materialized range read of accs[b]
	opRowStV   // range store accs[a] <- vr[b]
	opRowUpdS  // range compound accs[a] <- scalar fr[b] (arith in access)
	opRowUpdV  // range compound accs[a] <- vr[b]
	opBufChk   // fault unless buffers[a] != nil; names[b]
	opBufPut   // baccs[a].Put(fr[b])
	opBufPutC  // baccs[a].Put(consts[b])

	// Control flow: absolute pc targets.
	opJmp       // pc = a
	opJmpIfNot  // pc = a unless br[b]
	opJmpCmpNot // pc = a unless fr[b] cmp(d) rhs; e != 0 makes rhs consts[c], else fr[c]
	opForInit   // ir[2a] = int64(fr[b]); ir[2a+1] = int64(fr[c]); d&1/d&2 make lo/hi consts
	opForCond   // loop a: bind float local b and continue, or pc = c
	opForNext   // ir[2a]++; then bind float local d and pc = b, or pc = c

	// Superinstructions built by the post-lowering fusion pass
	// (fuseSuper): each replaces an adjacent group whose unfused form
	// round-trips dead temps through the register file, and executes
	// its components in the original order so faults, messages, and
	// every intermediate rounding step are unchanged.
	opLdPt2C   // fused[b]: two clamped point loads, fr[a1/a2] = min|max(ld accs[b1/b2], consts[c1/c2])
	opAddG2Mul // fr[a] = (fr[f.a1]+gl[f.b1]) * (fr[f.a2]+gl[f.b2]), f = fused[b]; c1/c2 >= 0 check glDef
	opAddGDivR // fr[a] = fr[d] / (fr[b] + gl[c]); e >= 0 checks glDef[c] (names[e])
	opVStAdd   // vr[a][int64(fr[b])-1] = fr[c]; fr[d] = fr[e] + fr[c], one bounds fault
)

// Arithmetic selectors for compound/vector ops, in arithFn order.
const (
	selAdd int32 = iota
	selSub
	selMul
	selDiv
	selPow
)

// Message selectors for opArrChk/opChkVElem.
const (
	selRead int32 = iota
	selWrite
)

// Comparison selectors for opJmpCmpNot, in opEqB..opGeB order.
const (
	cmpEq int32 = iota
	cmpNe
	cmpLt
	cmpLe
	cmpGt
	cmpGe
)

func arith(sel int32, a, b float64) float64 {
	switch sel {
	case selAdd:
		return a + b
	case selSub:
		return a - b
	case selMul:
		return a * b
	case selDiv:
		return a / b
	}
	return math.Pow(a, b)
}

// opInfo carries the statement context compound-assignment faults
// report ("+= of undefined variable ...").
type opInfo struct {
	op   string // "+=", "-=", ...
	name string
}

// access is the static shape of one array subscript site: the subscript
// registers its operands were evaluated into, the compile-time extents,
// and the scratch/index buffers the site owns. The fused ops branch on
// the bound array's dense storage at runtime.
type access struct {
	ai       int32 // array slot
	nameIdx  int32
	rangeDim int32 // -1 for point accesses
	full     bool
	extent   int64   // dims[rangeDim] when full
	dims     []int64 // compile-time extents
	subs     []int32 // fr register per dim; -1 at rangeDim
	loReg    int32   // partial-range bound registers
	hiReg    int32
	ii       int32 // full-rank index buffer
	ri       int32 // rank-1 index buffer (row fast path)
	sid      int32 // scratch id (materialized reads, compound current values)
	sel      int32 // arith selector for compound range updates
}

// rtAcc is the runtime mirror of one point-access site, resolved when
// its array binds: the dense storage and the site's strides, extents,
// and subscript registers flattened into one fixed-size struct so the
// hot opcodes compute a flat offset without chasing the per-array
// dense/stride tables. Rank-1 sites reuse the rank-2 shape with a zero
// second stride, an always-passing second extent, and sub1 aliased to
// sub0, so the fast path stays small enough to inline into the
// dispatch loop. Unbound, non-dense, or rank ≥3 sites keep fast=false
// and route through the reference accessors.
type rtAcc struct {
	data       []float64
	s0, s1     int64
	d0, d1     uint64
	sub0, sub1 int32
	fast       bool
}

// ptOff resolves a point access's flat offset through its runtime
// mirror. ok=false sends the caller to the reference path — which
// repeats the bounds check and reports the fault when a coordinate is
// actually out of range.
func ptOff(fr []float64, ra *rtAcc) (int64, bool) {
	if !ra.fast {
		return 0, false
	}
	v0 := int64(fr[ra.sub0]) - 1
	v1 := int64(fr[ra.sub1]) - 1
	if uint64(v0) < ra.d0 && uint64(v1) < ra.d1 {
		return v0*ra.s0 + v1*ra.s1, true
	}
	return 0, false
}

// bufAccess is the static shape of one buffer write site.
type bufAccess struct {
	bi      int32
	nameIdx int32
	neg     bool // "-=" negates before Put
	subs    []int32
	ii      int32
}

type axpyInfo struct {
	w   int32 // vr register holding the scaled vector
	sid int32
	sub bool // l - s*w instead of l + s*w
}

// fentry carries the operands of a fused superinstruction that outgrew
// the five-field instr. The field meaning is per-opcode: two
// (dst, operand, const/global, selector) quads laid out in execution
// order.
type fentry struct {
	a1, b1, c1, d1 int32
	a2, b2, c2, d2 int32
}

// Prog is a loop lowered to bytecode. It is immutable and safe to
// share; each executor obtains its own mutable state via NewKernel.
type Prog struct {
	loop *lang.Loop

	code   []instr
	consts []float64
	names  []string
	infos  []opInfo
	accs   []access
	baccs  []bufAccess
	axpys  []axpyInfo
	pins   []pinVal // constant pins, written once per kernel
	fused  []fentry // operand records for superinstructions

	numFloat, numVec, numBool int // local slot counts
	nFReg, nVReg, nBReg       int // register file sizes (locals + temps)
	nFor                      int
	valSlot                   int

	globalIx    map[string]int
	globalNames []string
	arrayIx     map[string]int
	arrayNames  []string
	arrayDims   [][]int64
	bufIx       map[string]int
	bufNames    []string

	nScratch int
	idxSizes []int
}

// Loop returns the compiled loop's AST.
func (p *Prog) Loop() *lang.Loop { return p.loop }

// vmFault carries a runtime error out of the dispatch loop; RunIteration
// and RunBlock recover it back into an error. Non-fault panics (array
// bounds violations, which the interpreter also surfaces as panics)
// propagate unchanged.
type vmFault struct{ err error }

func fail(format string, args ...interface{}) {
	panic(vmFault{fmt.Errorf(format, args...)})
}

// Kernel is one executor's mutable instance of a Prog: register files,
// bound arrays/buffers, globals, and reusable scratch. Not safe for
// concurrent use; create one per goroutine with NewKernel.
type Kernel struct {
	p *Prog

	fr []float64
	vr [][]float64
	br []bool
	ir []int64 // two per inner for loop: counter, limit

	flDef  []bool // per float local
	vecDef []bool
	boDef  []bool

	gl    []float64
	glDef []bool

	arrays  []lang.ArrayAccess
	dense   [][]float64 // non-nil where flat-offset access applies
	stride  [][]int64
	racc    []rtAcc // per point-access runtime mirror
	buffers []lang.BufferAccess
	rng     lang.RandSource

	scratch [][]float64
	idx     [][]int64

	budget   int64
	vecLimit int64
	key      []int64
}

// NewKernel allocates a kernel instance with empty bindings.
func (p *Prog) NewKernel() *Kernel {
	k := &Kernel{p: p}
	k.fr = make([]float64, p.nFReg)
	// Constant pins are loaded once here; no program instruction writes
	// them, so every literal operand reads its register for free.
	for _, pv := range p.pins {
		k.fr[pv.reg] = pv.val
	}
	k.vr = make([][]float64, p.nVReg)
	k.br = make([]bool, p.nBReg)
	k.ir = make([]int64, 2*p.nFor)
	k.flDef = make([]bool, p.numFloat)
	k.vecDef = make([]bool, p.numVec)
	k.boDef = make([]bool, p.numBool)
	k.gl = make([]float64, len(p.globalNames))
	k.glDef = make([]bool, len(p.globalNames))
	k.arrays = make([]lang.ArrayAccess, len(p.arrayNames))
	k.dense = make([][]float64, len(p.arrayNames))
	k.stride = make([][]int64, len(p.arrayNames))
	k.racc = make([]rtAcc, len(p.accs))
	k.buffers = make([]lang.BufferAccess, len(p.bufNames))
	k.scratch = make([][]float64, p.nScratch)
	k.idx = make([][]int64, len(p.idxSizes))
	for i, n := range p.idxSizes {
		k.idx[i] = make([]int64, n)
	}
	return k
}

// BindArray binds a DistArray view to its slot; the view's extents must
// match the compile-time environment. Views implementing
// lang.DenseAccess with dense backing take the fused flat-offset paths.
func (k *Kernel) BindArray(name string, a lang.ArrayAccess) error {
	i, ok := k.p.arrayIx[name]
	if !ok {
		return fmt.Errorf("lang: compiled loop has no array %q", name)
	}
	want := k.p.arrayDims[i]
	got := a.Dims()
	if len(got) != len(want) {
		return fmt.Errorf("lang: array %q bound with rank %d, compiled for %d", name, len(got), len(want))
	}
	for d := range want {
		if got[d] != want[d] {
			return fmt.Errorf("lang: array %q bound with dims %v, compiled for %v", name, got, want)
		}
	}
	k.arrays[i] = a
	k.dense[i], k.stride[i] = nil, nil
	if da, ok := a.(lang.DenseAccess); ok {
		if data, stride := da.DenseData(); data != nil {
			k.dense[i], k.stride[i] = data, stride
		}
	}
	// Refresh the runtime mirrors of this array's point-access sites.
	for j := range k.p.accs {
		acc := &k.p.accs[j]
		if int(acc.ai) != i || acc.rangeDim != -1 {
			continue
		}
		ra := &k.racc[j]
		*ra = rtAcc{}
		data, stride := k.dense[i], k.stride[i]
		if data == nil {
			continue
		}
		switch len(acc.dims) {
		case 1:
			// Rank-1 wears the rank-2 shape: the aliased second
			// coordinate contributes stride 0 and always bounds-checks
			// clean unless the first one already failed.
			ra.data, ra.s0, ra.d0, ra.sub0 = data, stride[0], uint64(acc.dims[0]), acc.subs[0]
			ra.s1, ra.d1, ra.sub1 = 0, 1<<62, acc.subs[0]
			ra.fast = true
		case 2:
			ra.data, ra.s0, ra.s1 = data, stride[0], stride[1]
			ra.d0, ra.d1 = uint64(acc.dims[0]), uint64(acc.dims[1])
			ra.sub0, ra.sub1 = acc.subs[0], acc.subs[1]
			ra.fast = true
		}
	}
	return nil
}

// BindBuffer binds a DistArray Buffer to its slot.
func (k *Kernel) BindBuffer(name string, b lang.BufferAccess) error {
	i, ok := k.p.bufIx[name]
	if !ok {
		return fmt.Errorf("lang: compiled loop has no buffer %q", name)
	}
	k.buffers[i] = b
	return nil
}

// SetRng backs the rand() builtin (nil makes rand() an error, matching
// Machine semantics).
func (k *Kernel) SetRng(r lang.RandSource) { k.rng = r }

// SetStepBudget bounds inner for-range body executions across the
// kernel's lifetime; 0 disables the budget. Mirrors Machine.StepBudget.
func (k *Kernel) SetStepBudget(n int64) { k.budget = n }

// SetVecLimit bounds zeros() vector lengths; 0 disables the limit.
// Mirrors Machine.VecLimit.
func (k *Kernel) SetVecLimit(n int64) { k.vecLimit = n }

// SetGlobal sets a global slot's value, reporting whether the loop
// declares the name.
func (k *Kernel) SetGlobal(name string, v float64) bool {
	i, ok := k.p.globalIx[name]
	if !ok {
		return false
	}
	k.gl[i] = v
	k.glDef[i] = true
	return true
}

// Global reads a global by name.
func (k *Kernel) Global(name string) (float64, bool) {
	i, ok := k.p.globalIx[name]
	if !ok {
		return 0, false
	}
	return k.gl[i], true
}

// GlobalSlot resolves a global name to its slot (-1 when absent), for
// allocation-free reads via GlobalAt on hot paths.
func (k *Kernel) GlobalSlot(name string) int {
	i, ok := k.p.globalIx[name]
	if !ok {
		return -1
	}
	return i
}

// GlobalAt reads a global by slot.
func (k *Kernel) GlobalAt(slot int) float64 { return k.gl[slot] }

func (k *Kernel) growScratch(sid, n int) []float64 {
	s := k.scratch[sid]
	if n < 0 || cap(s) < n {
		s = make([]float64, n)
	} else {
		s = s[:n]
	}
	k.scratch[sid] = s
	return s
}

// beginIter resets per-iteration state: definedness flags, the borrowed
// key, and the value slot.
func (k *Kernel) beginIter(key []int64, val float64) {
	for i := range k.flDef {
		k.flDef[i] = false
	}
	for i := range k.vecDef {
		k.vecDef[i] = false
	}
	for i := range k.boDef {
		k.boDef[i] = false
	}
	k.key = key
	if k.p.valSlot >= 0 {
		k.fr[k.p.valSlot] = val
		k.flDef[k.p.valSlot] = true
	}
}

// RunIteration executes the loop body for one iteration. The key slice
// is borrowed for the duration of the call and never retained. Runtime
// faults the interpreter reports as errors come back as errors; array
// bounds violations panic, exactly as they do under interpretation.
func (k *Kernel) RunIteration(key []int64, val float64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if vf, ok := r.(vmFault); ok {
				err = vf.err
				return
			}
			panic(r)
		}
	}()
	k.beginIter(key, val)
	k.exec()
	return nil
}

// RunBlock executes a run of consecutive iterations with one
// recover/dispatch preamble for the whole batch. onIter (optional) is
// invoked after each completed iteration — the runtime uses it to fold
// accumulator deltas per iteration, preserving float ordering. It
// returns the number of fully completed iterations and the fault that
// stopped the run, if any.
func (k *Kernel) RunBlock(keys [][]int64, vals []float64, onIter func(i int)) (done int, err error) {
	defer func() {
		if r := recover(); r != nil {
			if vf, ok := r.(vmFault); ok {
				err = vf.err
				return
			}
			panic(r)
		}
	}()
	for i := range keys {
		var v float64
		if vals != nil {
			v = vals[i]
		}
		k.beginIter(keys[i], v)
		k.exec()
		done = i + 1
		if onIter != nil {
			onIter(i)
		}
	}
	return done, nil
}

// RunLoop executes the loop body once per element of the bound
// iteration-space array, in deterministic element order, stopping at
// the first error.
func (k *Kernel) RunLoop() error {
	iterVar := k.p.loop.IterVar
	i, ok := k.p.arrayIx[iterVar]
	if !ok || k.arrays[i] == nil {
		return fmt.Errorf("lang: iteration space %q not bound", iterVar)
	}
	iter, ok := k.arrays[i].(lang.Iterable)
	if !ok {
		return fmt.Errorf("lang: iteration space %q is not iterable on this machine", iterVar)
	}
	if u, ok := iter.(lang.IterableUntil); ok {
		var err error
		u.ForEachUntil(func(idx []int64, v float64) bool {
			err = k.RunIteration(idx, v)
			return err == nil
		})
		return err
	}
	var err error
	iter.ForEach(func(idx []int64, v float64) {
		if err != nil {
			return
		}
		err = k.RunIteration(idx, v)
	})
	return err
}
