package vm

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"orion/internal/dsm"
	"orion/internal/lang"
)

// ---------------------------------------------------------------------
// Three-way differential harness: run a program under the interpreter,
// the closure compiler, and the bytecode VM, and require bitwise-
// identical outcomes — same stop point, same error or panic, same
// DistArray contents, same global/accumulator values. The two compiled
// backends must also agree exactly on what is compilable.
// ---------------------------------------------------------------------

const (
	fillFloats = iota // uniform [0,1) values
	fillInts          // small integers 1..6 (usable as subscripts)
)

func buildArrays(env *lang.Env, scheme int, seed int64) map[string]*dsm.DistArray {
	names := make([]string, 0, len(env.Arrays))
	for n := range env.Arrays {
		names = append(names, n)
	}
	sort.Strings(names)
	rng := rand.New(rand.NewSource(seed))
	out := make(map[string]*dsm.DistArray, len(names))
	for _, n := range names {
		a := dsm.NewDense(n, env.Arrays[n]...)
		a.Map(func(v float64) float64 {
			if scheme == fillInts {
				return float64(1 + rng.Intn(6))
			}
			return rng.Float64()
		})
		out[n] = a
	}
	return out
}

func collectKeys(iter *dsm.DistArray, interior bool) (keys [][]int64, vals []float64) {
	dims := iter.Dims()
	iter.ForEach(func(idx []int64, v float64) {
		if interior {
			for d, c := range idx {
				if c < 1 || c > dims[d]-2 {
					return
				}
			}
		}
		keys = append(keys, idx)
		vals = append(vals, v)
	})
	return keys, vals
}

func diffGlobals(env *lang.Env, loop *lang.Loop, declared []string) map[string]float64 {
	known := map[string]float64{
		"step_size": 0.05, "K": 6, "alpha": 0.1, "beta": 0.01, "vbeta": 0.8,
	}
	accums := map[string]bool{}
	for _, a := range lang.Accumulators(loop) {
		accums[a] = true
	}
	set := map[string]bool{}
	var names []string
	add := func(ns []string) {
		for _, n := range ns {
			if !set[n] {
				set[n] = true
				names = append(names, n)
			}
		}
	}
	add(declared)
	if spec, err := lang.Analyze(loop, env); err == nil {
		add(spec.Inherited)
	}
	add(lang.Accumulators(loop))
	sort.Strings(names)
	out := make(map[string]float64, len(names))
	for i, n := range names {
		switch {
		case accums[n]:
			out[n] = 0
		default:
			if v, ok := known[n]; ok {
				out[n] = v
			} else {
				out[n] = 0.3 + 0.11*float64(i)
			}
		}
	}
	return out
}

type backendResult struct {
	arrays   map[string]*dsm.DistArray
	stop     int
	errMsg   string
	panicked bool
	panicMsg string
	globals  map[string]float64
}

func runOne(step func(i int) error, n int) (stop int, errMsg string, panicked bool, panicMsg string) {
	for i := 0; i < n; i++ {
		var err error
		func() {
			defer func() {
				if r := recover(); r != nil {
					panicked = true
					panicMsg = fmt.Sprint(r)
				}
			}()
			err = step(i)
		}()
		if panicked {
			return i, "", true, panicMsg
		}
		if err != nil {
			return i, err.Error(), false, ""
		}
	}
	return n, "", false, ""
}

type diffConfig struct {
	scheme   int
	interior bool
	budget   int64
	vecLimit int64
	seed     int64
	maxIters int
	block    bool // drive the VM through RunBlock instead of RunIteration
}

func runInterp(prog *lang.Program, globals map[string]float64, cfg diffConfig) backendResult {
	arrays := buildArrays(prog.Env, cfg.scheme, cfg.seed)
	m := lang.NewMachine()
	for n, a := range arrays {
		m.Arrays[n] = a
	}
	for n, target := range prog.Env.Buffers {
		m.Buffers[n] = dsm.NewBuffer(arrays[target], nil)
	}
	for n, v := range globals {
		m.Globals[n] = v
	}
	m.Rng = rand.New(rand.NewSource(cfg.seed + 1))
	m.StepBudget = cfg.budget
	m.VecLimit = cfg.vecLimit
	keys, vals := collectKeys(arrays[prog.Loop.IterVar], cfg.interior)
	if cfg.maxIters > 0 && len(keys) > cfg.maxIters {
		keys, vals = keys[:cfg.maxIters], vals[:cfg.maxIters]
	}
	res := backendResult{arrays: arrays, globals: map[string]float64{}}
	res.stop, res.errMsg, res.panicked, res.panicMsg = runOne(func(i int) error {
		return m.RunIteration(prog.Loop, keys[i], vals[i])
	}, len(keys))
	for n, b := range m.Buffers {
		b.(*dsm.Buffer).Flush(arrays[prog.Env.Buffers[n]])
	}
	for n := range globals {
		res.globals[n] = m.Globals[n].(float64)
	}
	return res
}

// kernelAPI is the surface shared by the two compiled backends; the
// harness drives both through it.
type kernelAPI interface {
	BindArray(name string, a lang.ArrayAccess) error
	BindBuffer(name string, b lang.BufferAccess) error
	SetRng(r lang.RandSource)
	SetStepBudget(n int64)
	SetVecLimit(n int64)
	SetGlobal(name string, v float64) bool
	Global(name string) (float64, bool)
	RunIteration(key []int64, val float64) error
}

func globalNames(globals map[string]float64) []string {
	names := make([]string, 0, len(globals))
	for n := range globals {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func runKernel(t *testing.T, prog *lang.Program, globals map[string]float64, cfg diffConfig, k kernelAPI, runBlock func(keys [][]int64, vals []float64, progress *int) (int, error)) backendResult {
	t.Helper()
	arrays := buildArrays(prog.Env, cfg.scheme, cfg.seed)
	for n, a := range arrays {
		if err := k.BindArray(n, a); err != nil {
			t.Fatalf("BindArray(%s): %v", n, err)
		}
	}
	bufs := map[string]*dsm.Buffer{}
	for n, target := range prog.Env.Buffers {
		bufs[n] = dsm.NewBuffer(arrays[target], nil)
		if err := k.BindBuffer(n, bufs[n]); err != nil {
			t.Fatalf("BindBuffer(%s): %v", n, err)
		}
	}
	for n, v := range globals {
		if !k.SetGlobal(n, v) {
			t.Fatalf("SetGlobal(%s) not accepted", n)
		}
	}
	k.SetRng(rand.New(rand.NewSource(cfg.seed + 1)))
	k.SetStepBudget(cfg.budget)
	k.SetVecLimit(cfg.vecLimit)
	keys, vals := collectKeys(arrays[prog.Loop.IterVar], cfg.interior)
	if cfg.maxIters > 0 && len(keys) > cfg.maxIters {
		keys, vals = keys[:cfg.maxIters], vals[:cfg.maxIters]
	}
	res := backendResult{arrays: arrays, globals: map[string]float64{}}
	if runBlock != nil {
		// progress escapes through the onIter callback: when a panic
		// unwinds RunBlock, its return value is lost, but the completed
		// count written per iteration survives.
		var progress int
		func() {
			defer func() {
				if r := recover(); r != nil {
					res.panicked = true
					res.panicMsg = fmt.Sprint(r)
				}
			}()
			done, err := runBlock(keys, vals, &progress)
			progress = done
			if err != nil {
				res.errMsg = err.Error()
			}
		}()
		res.stop = progress
	} else {
		res.stop, res.errMsg, res.panicked, res.panicMsg = runOne(func(i int) error {
			return k.RunIteration(keys[i], vals[i])
		}, len(keys))
	}
	for n, b := range bufs {
		b.Flush(arrays[prog.Env.Buffers[n]])
	}
	for n := range globals {
		v, _ := k.Global(n)
		res.globals[n] = v
	}
	return res
}

func compareResults(t *testing.T, label, bname string, ref, got backendResult) {
	t.Helper()
	if ref.stop != got.stop {
		t.Fatalf("%s: interp stopped after %d iterations, %s after %d (interp err=%q panic=%q; %s err=%q panic=%q)",
			label, ref.stop, bname, got.stop, ref.errMsg, ref.panicMsg, bname, got.errMsg, got.panicMsg)
	}
	if ref.errMsg != got.errMsg {
		t.Fatalf("%s: error mismatch:\ninterp: %q\n%s: %q", label, ref.errMsg, bname, got.errMsg)
	}
	if ref.panicked != got.panicked || ref.panicMsg != got.panicMsg {
		t.Fatalf("%s: panic mismatch:\ninterp: %v %q\n%s: %v %q",
			label, ref.panicked, ref.panicMsg, bname, got.panicked, got.panicMsg)
	}
	for n, a := range ref.arrays {
		b := got.arrays[n]
		mismatch := ""
		a.ForEach(func(idx []int64, v float64) {
			if mismatch != "" {
				return
			}
			if w := b.At(idx...); canonBits(w) != canonBits(v) {
				mismatch = fmt.Sprintf("array %s%v: interp %v, %s %v", n, idx, v, bname, w)
			}
		})
		if mismatch != "" {
			t.Fatalf("%s: %s", label, mismatch)
		}
	}
	for n, v := range ref.globals {
		if w := got.globals[n]; canonBits(w) != canonBits(v) {
			t.Fatalf("%s: global %s: interp %v, %s %v", label, n, v, bname, w)
		}
	}
}

// canonBits is Float64bits with NaN payloads collapsed to one value.
// Go leaves NaN propagation unspecified — with two NaN operands, which
// payload `a*b` returns depends on the operand the compiler places in
// the destination register, so independently compiled backends can
// legitimately disagree on NaN sign and payload bits. Every non-NaN
// value still compares bitwise, signed zeros included.
func canonBits(v float64) uint64 {
	if v != v {
		return math.Float64bits(math.NaN())
	}
	return math.Float64bits(v)
}

// diffProgram runs one parsed program under all three backends.
// Returns false when the program is outside the compiled subset — in
// which case BOTH compiled backends must have rejected it.
func diffProgram(t *testing.T, label string, prog *lang.Program, cfg diffConfig) bool {
	t.Helper()
	globals := diffGlobals(prog.Env, prog.Loop, prog.Globals)
	cenv := &lang.CompileEnv{
		Arrays:  prog.Env.Arrays,
		Buffers: prog.Env.Buffers,
		Globals: globalNames(globals),
	}
	cl, clErr := lang.CompileLoop(prog.Loop, cenv)
	p, vmErr := Compile(prog.Loop, cenv)
	if (clErr == nil) != (vmErr == nil) {
		t.Fatalf("%s: backends disagree on compilability:\nclosure: %v\nvm:      %v", label, clErr, vmErr)
	}
	if clErr != nil {
		if _, ok := clErr.(*lang.NotCompilableError); !ok {
			t.Fatalf("%s: CompileLoop failed with %T: %v", label, clErr, clErr)
		}
		if _, ok := vmErr.(*lang.NotCompilableError); !ok {
			t.Fatalf("%s: vm.Compile failed with %T: %v", label, vmErr, vmErr)
		}
		return false
	}
	interp := runInterp(prog, globals, cfg)
	compiled := runKernel(t, prog, globals, cfg, cl.NewKernel(), nil)
	compareResults(t, label, "compiled", interp, compiled)
	vk := p.NewKernel()
	var blockFn func([][]int64, []float64, *int) (int, error)
	if cfg.block {
		blockFn = func(keys [][]int64, vals []float64, progress *int) (int, error) {
			return vk.RunBlock(keys, vals, func(i int) { *progress = i + 1 })
		}
	}
	vmRes := runKernel(t, prog, globals, cfg, vk, blockFn)
	compareResults(t, label, "vm", interp, vmRes)
	return true
}

func exampleProgramSources(t testing.TB) map[string]string {
	pattern := filepath.Join("..", "..", "..", "examples", "*", "*.orion")
	files, err := filepath.Glob(pattern)
	if err != nil || len(files) == 0 {
		t.Fatalf("no example programs found at %s (err=%v)", pattern, err)
	}
	out := make(map[string]string, len(files))
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatalf("read %s: %v", f, err)
		}
		out[filepath.Base(f)] = string(src)
	}
	return out
}

// TestDifferentialExamples: every shipped example must compile under
// both compiled backends and produce bitwise-identical results across
// all three, across fill schemes, walk restrictions, and both the
// per-iteration and batched (RunBlock) VM drivers.
func TestDifferentialExamples(t *testing.T) {
	for name, src := range exampleProgramSources(t) {
		prog, err := lang.ParseProgram(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, scheme := range []int{fillFloats, fillInts} {
			for _, interior := range []bool{false, true} {
				for _, block := range []bool{false, true} {
					label := fmt.Sprintf("%s/scheme=%d/interior=%v/block=%v", name, scheme, interior, block)
					cfg := diffConfig{scheme: scheme, interior: interior, seed: 42, block: block}
					if !diffProgram(t, label, prog, cfg) {
						t.Fatalf("%s: example is outside the compiled subset", label)
					}
				}
			}
		}
	}
}

// ---------------------------------------------------------------------
// Randomized three-way differential property tests.
// ---------------------------------------------------------------------

func typedFloatExpr(rng *rand.Rand, depth int) lang.Expr {
	if depth <= 0 {
		switch rng.Intn(7) {
		case 0:
			return &lang.Num{Val: float64(rng.Intn(5))}
		case 1:
			return &lang.Ident{Name: "x"}
		case 2:
			return &lang.Ident{Name: "y"}
		case 3:
			return &lang.Ident{Name: "g"}
		case 4:
			return &lang.Ident{Name: "v"}
		case 5:
			return &lang.Index{Base: "key", Subs: []lang.Expr{&lang.Num{Val: float64(1 + rng.Intn(2))}}}
		default:
			return &lang.Num{Val: rng.Float64()}
		}
	}
	switch rng.Intn(8) {
	case 0:
		ops := []string{"+", "-", "*", "/"}
		return &lang.BinOp{Op: ops[rng.Intn(len(ops))],
			L: typedFloatExpr(rng, depth-1), R: typedFloatExpr(rng, depth-1)}
	case 1:
		return &lang.UnOp{Op: "-", X: typedFloatExpr(rng, depth-1)}
	case 2:
		fns := []string{"abs", "abs2", "sqrt", "exp", "sigmoid", "floor", "ceil"}
		return &lang.Call{Fn: fns[rng.Intn(len(fns))], Args: []lang.Expr{typedFloatExpr(rng, depth-1)}}
	case 3:
		fn := []string{"min", "max"}[rng.Intn(2)]
		return &lang.Call{Fn: fn, Args: []lang.Expr{typedFloatExpr(rng, depth-1), typedFloatExpr(rng, depth-1)}}
	case 4:
		return &lang.Index{Base: "A", Subs: []lang.Expr{typedSub(rng), typedSub(rng)}}
	case 5:
		return &lang.Call{Fn: "dot", Args: []lang.Expr{typedVecExpr(rng, depth-1), typedVecExpr(rng, depth-1)}}
	case 6:
		return &lang.Index{Base: "p", Subs: []lang.Expr{typedSub(rng)}}
	default:
		return &lang.Call{Fn: "rand"}
	}
}

func typedSub(rng *rand.Rand) lang.Expr {
	switch rng.Intn(6) {
	case 0:
		return &lang.Index{Base: "key", Subs: []lang.Expr{&lang.Num{Val: 2}}}
	case 1:
		return &lang.Ident{Name: "x"}
	default:
		return &lang.Num{Val: float64(1 + rng.Intn(4))}
	}
}

func typedVecExpr(rng *rand.Rand, depth int) lang.Expr {
	if depth <= 0 {
		switch rng.Intn(3) {
		case 0:
			return &lang.Index{Base: "A", Subs: []lang.Expr{&lang.RangeExpr{Full: true}, typedSub(rng)}}
		case 1:
			return &lang.Call{Fn: "zeros", Args: []lang.Expr{&lang.Num{Val: 4}}}
		default:
			return &lang.Ident{Name: "p"}
		}
	}
	switch rng.Intn(5) {
	case 0:
		ops := []string{"+", "-", "*"}
		return &lang.BinOp{Op: ops[rng.Intn(len(ops))],
			L: typedVecExpr(rng, depth-1), R: typedVecExpr(rng, depth-1)}
	case 1:
		return &lang.BinOp{Op: "*", L: typedFloatExpr(rng, depth-1), R: typedVecExpr(rng, depth-1)}
	case 2:
		// The AxpyRow fusion shape: vec ± scalar*vec.
		return &lang.BinOp{Op: []string{"+", "-"}[rng.Intn(2)],
			L: typedVecExpr(rng, depth-1),
			R: &lang.BinOp{Op: "*", L: typedFloatExpr(rng, depth-1), R: typedVecExpr(rng, depth-1)}}
	case 3:
		return &lang.UnOp{Op: "-", X: typedVecExpr(rng, depth-1)}
	default:
		return typedVecExpr(rng, 0)
	}
}

func typedStmt(rng *rand.Rand, depth int) lang.Stmt {
	ops := []string{"=", "+=", "-=", "*=", "/="}
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(8) {
		case 0:
			return &lang.Assign{Target: &lang.Ident{Name: []string{"x", "y"}[rng.Intn(2)]},
				Op: ops[rng.Intn(len(ops))], Value: typedFloatExpr(rng, 2)}
		case 1:
			v := typedVecExpr(rng, 2)
			op := "="
			if _, isIdent := v.(*lang.Ident); isIdent || rng.Intn(2) == 0 {
				op = []string{"+=", "-=", "*="}[rng.Intn(3)]
			}
			return &lang.Assign{Target: &lang.Ident{Name: "p"}, Op: op, Value: v}
		case 2:
			return &lang.Assign{Target: &lang.Index{Base: "p", Subs: []lang.Expr{typedSub(rng)}},
				Op: ops[rng.Intn(len(ops))], Value: typedFloatExpr(rng, 2)}
		case 3:
			return &lang.Assign{Target: &lang.Index{Base: "A", Subs: []lang.Expr{typedSub(rng), typedSub(rng)}},
				Op: ops[rng.Intn(len(ops))], Value: typedFloatExpr(rng, 2)}
		case 4:
			return &lang.Assign{Target: &lang.Index{Base: "A", Subs: []lang.Expr{&lang.RangeExpr{Full: true}, typedSub(rng)}},
				Op: ops[rng.Intn(len(ops))], Value: typedVecExpr(rng, 2)}
		case 5:
			// Partial-range update on the second dimension (strided).
			return &lang.Assign{Target: &lang.Index{Base: "A", Subs: []lang.Expr{typedSub(rng),
				&lang.RangeExpr{Lo: &lang.Num{Val: 1}, Hi: &lang.Num{Val: 4}}}},
				Op: []string{"=", "+=", "*="}[rng.Intn(3)], Value: typedVecExpr(rng, 1)}
		case 6:
			return &lang.Assign{Target: &lang.Index{Base: "buf", Subs: []lang.Expr{typedSub(rng), typedSub(rng)}},
				Op: []string{"+=", "-="}[rng.Intn(2)], Value: typedFloatExpr(rng, 2)}
		default:
			return &lang.Assign{Target: &lang.Ident{Name: "acc"}, Op: "+=", Value: typedFloatExpr(rng, 2)}
		}
	}
	switch rng.Intn(3) {
	case 0:
		cmp := []string{"<", "<=", ">", ">=", "==", "!="}
		st := &lang.If{Cond: &lang.BinOp{Op: cmp[rng.Intn(len(cmp))],
			L: typedFloatExpr(rng, 1), R: typedFloatExpr(rng, 1)},
			Then: []lang.Stmt{typedStmt(rng, depth-1)}}
		if rng.Intn(2) == 0 {
			st.Else = []lang.Stmt{typedStmt(rng, depth-1)}
		}
		return st
	case 1:
		return &lang.ForRange{Var: "k", Lo: &lang.Num{Val: 1}, Hi: &lang.Num{Val: float64(1 + rng.Intn(3))},
			Body: []lang.Stmt{typedStmt(rng, depth-1)}}
	default:
		return &lang.ExprStmt{X: typedFloatExpr(rng, 2)}
	}
}

// TestDifferentialRandomPrograms: randomly generated (mostly
// well-typed) loops must behave identically under all three backends.
func TestDifferentialRandomPrograms(t *testing.T) {
	env := &lang.Env{
		Arrays: map[string][]int64{
			"data": {5, 4},
			"A":    {4, 4},
			"B":    {3, 4},
		},
		Buffers: map[string]string{"buf": "A"},
	}
	rng := rand.New(rand.NewSource(2027))
	compiledCount := 0
	for trial := 0; trial < 300; trial++ {
		loop := &lang.Loop{KeyVar: "key", ValVar: "v", IterVar: "data"}
		loop.Body = []lang.Stmt{
			&lang.Assign{Target: &lang.Ident{Name: "x"}, Op: "=", Value: &lang.Index{Base: "key", Subs: []lang.Expr{&lang.Num{Val: 2}}}},
			&lang.Assign{Target: &lang.Ident{Name: "y"}, Op: "=", Value: &lang.Ident{Name: "v"}},
			&lang.Assign{Target: &lang.Ident{Name: "p"}, Op: "=", Value: &lang.Call{Fn: "zeros", Args: []lang.Expr{&lang.Num{Val: 4}}}},
		}
		n := 1 + rng.Intn(5)
		for i := 0; i < n; i++ {
			loop.Body = append(loop.Body, typedStmt(rng, 2))
		}
		src := loop.String()
		parsed, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("trial %d: generated loop does not parse: %v\n%s", trial, err, src)
		}
		prog := &lang.Program{Env: env, Globals: []string{"g"}, Loop: parsed}
		cfg := diffConfig{scheme: fillInts, seed: int64(trial), maxIters: 20, block: trial%2 == 0}
		if diffProgram(t, fmt.Sprintf("trial %d:\n%s", trial, src), prog, cfg) {
			compiledCount++
		}
	}
	if compiledCount < 200 {
		t.Fatalf("only %d/300 random programs were compilable — generator or compiler subset too narrow", compiledCount)
	}
}

// TestVMNotCompilable: the VM must reject exactly the constructs the
// closure backend rejects, with *lang.NotCompilableError.
func TestVMNotCompilable(t *testing.T) {
	env := &lang.CompileEnv{
		Arrays:  map[string][]int64{"data": {4, 4}, "A": {4, 4}},
		Globals: []string{"g"},
	}
	cases := []struct{ name, src string }{
		{"key as value", "for (key, v) in data\n    x = key\nend\n"},
		{"vector aliasing", "for (key, v) in data\n    p = A[:, 1]\n    q = p\nend\n"},
		{"whole-array ref", "for (key, v) in data\n    x = A\nend\n"},
		{"vector comparison", "for (key, v) in data\n    p = A[:, 1] < 2\nend\n"},
		{"type conflict", "for (key, v) in data\n    x = 1\n    x = A[:, 1]\nend\n"},
		{"if non-bool", "for (key, v) in data\n    if v\n        x = 1\n    end\nend\n"},
		{"unknown function", "for (key, v) in data\n    x = frob(v)\nend\n"},
		{"arity mismatch", "for (key, v) in data\n    x = A[1]\nend\n"},
		{"two ranges", "for (key, v) in data\n    p = A[:, :]\nend\n"},
		{"local shadows array", "for (key, v) in data\n    A = 1\nend\n"},
		{"global vec assign", "for (key, v) in data\n    g = A[:, 1]\nend\n"},
	}
	for _, tc := range cases {
		loop, err := lang.Parse(tc.src)
		if err != nil {
			t.Fatalf("%s: parse: %v", tc.name, err)
		}
		_, err = Compile(loop, env)
		if err == nil {
			t.Fatalf("%s: expected NotCompilableError, compiled fine", tc.name)
		}
		if _, ok := err.(*lang.NotCompilableError); !ok {
			t.Fatalf("%s: error %T is not *lang.NotCompilableError: %v", tc.name, err, err)
		}
	}
}

// TestVMRuntimeErrors: runtime faults must carry the exact interpreter
// messages (the three-way differential fuzzer depends on it).
func TestVMRuntimeErrors(t *testing.T) {
	env := &lang.CompileEnv{
		Arrays:  map[string][]int64{"data": {4, 4}, "A": {4, 4}, "B": {3, 4}},
		Globals: []string{"g"},
	}
	cases := []struct{ name, src, want string }{
		{"undefined read", "for (key, v) in data\n    if v < 0\n        x = 1\n    end\n    y = x\nend\n",
			`lang: undefined variable "x"`},
		{"compound undefined", "for (key, v) in data\n    if v < 0\n        x = 1\n    end\n    x += 1\nend\n",
			`lang: += of undefined variable "x"`},
		{"key oob", "for (key, v) in data\n    x = key[3]\nend\n",
			"lang: key subscript 3 out of range"},
		{"dot mismatch", "for (key, v) in data\n    x = dot(A[:, 1], B[:, 1])\nend\n",
			"lang: dot needs two equal-length vectors"},
		{"vec length mismatch", "for (key, v) in data\n    p = A[:, 1] + B[:, 1]\nend\n",
			"lang: vector length mismatch 4 vs 3"},
		{"axpy length mismatch", "for (key, v) in data\n    p = A[:, 1] + v * B[:, 1]\nend\n",
			"lang: vector length mismatch 4 vs 3"},
		{"range write mismatch", "for (key, v) in data\n    A[:, 1] = B[:, 1]\nend\n",
			"lang: A: vector length 3 does not match range 1:4"},
		{"rand without rng", "for (key, v) in data\n    x = rand()\nend\n",
			"lang: rand() requires a Machine with an Rng"},
		{"vec subscript oob", "for (key, v) in data\n    p = zeros(2)\n    x = p[5]\nend\n",
			"lang: vector subscript 5 out of range"},
		{"undefined global", "for (key, v) in data\n    x = g\nend\n",
			`lang: undefined variable "g"`},
	}
	for _, tc := range cases {
		loop, err := lang.Parse(tc.src)
		if err != nil {
			t.Fatalf("%s: parse: %v", tc.name, err)
		}
		p, err := Compile(loop, env)
		if err != nil {
			t.Fatalf("%s: compile: %v", tc.name, err)
		}
		k := p.NewKernel()
		for name, dims := range env.Arrays {
			if err := k.BindArray(name, dsm.NewDense(name, dims...)); err != nil {
				t.Fatal(err)
			}
		}
		err = k.RunIteration([]int64{0, 0}, 1)
		if err == nil || err.Error() != tc.want {
			t.Fatalf("%s: got error %v, want %q", tc.name, err, tc.want)
		}
	}
}
