package vm

import (
	"fmt"
	"math"

	"orion/internal/lang"
)

// Lowering walks the slot-resolved AST once, emitting instructions
// bottom-up. Temporary registers are allocated monotonically within a
// statement and recycled at statement boundaries; locals occupy the low
// registers of each file so slot numbers double as register numbers.
//
// Evaluation-order parity with the closure backend is load-bearing:
// definedness checks precede subscript evaluation for vector-local
// reads, assignment right-hand sides are evaluated before target
// checks, array nil checks precede subscript evaluation, and subscripts
// evaluate in dimension order with lo before hi. Each emission site
// below mirrors the corresponding compile*.go closure.

type comp struct {
	res  *lang.Resolution
	loop *lang.Loop

	code    []instr
	consts  []float64
	constIx map[uint64]int32
	names   []string
	nameIx  map[string]int32
	infos   []opInfo
	accs    []access
	baccs   []bufAccess
	axpys   []axpyInfo
	fused   []fentry

	defs *defState

	// keyPin assigns each distinct literal key subscript a permanent
	// register (between the locals and the statement temps) so a
	// dominating opKeyC serves every later use of the same literal.
	// numPin does the same for numeric literals; their registers are
	// filled once at kernel construction and never written again, so a
	// literal operand lowers to no code.
	keyPin   map[int64]int32
	numPin   map[uint64]int32
	pinVals  []pinVal
	tempBase int32 // first statement-temp float register

	nFloatLoc, nVecLoc, nBoolLoc int32
	fTop, vTop, bTop             int32
	maxF, maxV, maxB             int32
	nFor                         int32
	nScratch                     int32
	idxSizes                     []int
}

// defState tracks, per lowering position, which locals are definitely
// defined, which globals definitely passed a definedness check, and
// which arrays/buffers definitely passed a nil check on every path
// reaching that position. A dominated re-check can never fire — local
// definedness only ever grows within an iteration and array/buffer
// bindings are fixed for the whole run — so the lowering elides it.
// Branches merge by intersection; loop bodies may run zero times, so
// their effects do not survive the loop.
type defState struct {
	f, b, v  []bool         // float/bool/vec local slots definitely defined
	g        []bool         // globals definitely defined
	arr, buf []bool         // arrays/buffers definitely nil-checked
	key      map[int64]bool // literal key subscripts with a dominating opKeyC
}

func newDefState(nf, nb, nv, ng, na, nbu int) *defState {
	return &defState{
		f: make([]bool, nf), b: make([]bool, nb), v: make([]bool, nv),
		g: make([]bool, ng), arr: make([]bool, na), buf: make([]bool, nbu),
		key: map[int64]bool{},
	}
}

func (d *defState) clone() *defState {
	c := &defState{
		f: append([]bool(nil), d.f...), b: append([]bool(nil), d.b...),
		v: append([]bool(nil), d.v...), g: append([]bool(nil), d.g...),
		arr: append([]bool(nil), d.arr...), buf: append([]bool(nil), d.buf...),
		key: make(map[int64]bool, len(d.key)),
	}
	for k := range d.key {
		c.key[k] = true
	}
	return c
}

func (d *defState) intersect(o *defState) {
	and := func(a, b []bool) {
		for i := range a {
			a[i] = a[i] && b[i]
		}
	}
	and(d.f, o.f)
	and(d.b, o.b)
	and(d.v, o.v)
	and(d.g, o.g)
	and(d.arr, o.arr)
	and(d.buf, o.buf)
	for k := range d.key {
		if !o.key[k] {
			delete(d.key, k)
		}
	}
}

// Compile lowers a loop body to bytecode against the given environment.
// It returns *lang.NotCompilableError for loops outside the compiled
// subset — the same subset as lang.CompileLoop, decided entirely by the
// shared resolution front end.
func Compile(loop *lang.Loop, env *lang.CompileEnv) (p *Prog, err error) {
	res, rerr := lang.ResolveLoop(loop, env)
	if rerr != nil {
		return nil, rerr
	}
	defer func() {
		if r := recover(); r != nil {
			if nce, ok := r.(*lang.NotCompilableError); ok {
				p, err = nil, nce
				return
			}
			panic(r)
		}
	}()
	c := &comp{
		res:     res,
		loop:    loop,
		constIx: map[uint64]int32{},
		nameIx:  map[string]int32{},
	}
	c.nFloatLoc = int32(res.NumFloat())
	c.nVecLoc = int32(res.NumVec())
	c.nBoolLoc = int32(res.NumBool())
	c.keyPin = map[int64]int32{}
	c.numPin = map[uint64]int32{}
	c.tempBase = c.nFloatLoc
	c.collectKeyLits(loop.Body)
	c.resetTemps()
	c.maxF, c.maxV, c.maxB = c.fTop, c.vTop, c.bTop

	globals := res.Globals()
	arrays := res.Arrays()
	buffers := res.Buffers()
	c.defs = newDefState(int(c.nFloatLoc), int(c.nBoolLoc), int(c.nVecLoc),
		len(globals), len(arrays), len(buffers))
	if vs := res.ValSlot(); vs >= 0 {
		// The iteration value local is bound before the body runs.
		c.defs.f[vs] = true
	}
	c.lowerStmts(loop.Body)
	c.emit(opHalt, 0, 0, 0, 0, 0)
	c.finalize()
	c.fuseSuper()
	p = &Prog{
		loop:        loop,
		code:        c.code,
		consts:      c.consts,
		names:       c.names,
		infos:       c.infos,
		accs:        c.accs,
		baccs:       c.baccs,
		axpys:       c.axpys,
		pins:        c.pinVals,
		fused:       c.fused,
		numFloat:    int(c.nFloatLoc),
		numVec:      int(c.nVecLoc),
		numBool:     int(c.nBoolLoc),
		nFReg:       int(c.maxF),
		nVReg:       int(c.maxV),
		nBReg:       int(c.maxB),
		nFor:        int(c.nFor),
		valSlot:     res.ValSlot(),
		globalIx:    make(map[string]int, len(globals)),
		globalNames: globals,
		arrayIx:     make(map[string]int, len(arrays)),
		arrayNames:  arrays,
		arrayDims:   make([][]int64, len(arrays)),
		bufIx:       make(map[string]int, len(buffers)),
		bufNames:    buffers,
		nScratch:    int(c.nScratch),
		idxSizes:    c.idxSizes,
	}
	for i, n := range globals {
		p.globalIx[n] = i
	}
	for i, n := range arrays {
		p.arrayIx[n] = i
		p.arrayDims[i] = res.ArrayDims(i)
	}
	for i, n := range buffers {
		p.bufIx[n] = i
	}
	return p, nil
}

// nc rejects a construct the lowering does not handle. Every reachable
// rejection already happened in lang.ResolveLoop; these are defensive.
func (c *comp) nc(at lang.Pos, format string, args ...interface{}) {
	panic(&lang.NotCompilableError{Reason: fmt.Sprintf(format, args...), At: at})
}

func (c *comp) emit(op opcode, a, b, cc, d, e int32) int {
	c.code = append(c.code, instr{op: op, a: a, b: b, c: cc, d: d, e: e})
	return len(c.code) - 1
}

func (c *comp) patch(pc int, target int) {
	c.code[pc].a = int32(target)
}

func (c *comp) here() int { return len(c.code) }

func (c *comp) resetTemps() {
	c.fTop, c.vTop, c.bTop = c.tempBase, c.nVecLoc, c.nBoolLoc
}

// pinVal records one constant pin: a float register filled with a
// literal's value when the kernel is built.
type pinVal struct {
	reg int32
	val float64
}

// keyLitConst reports whether a literal key subscript survives the
// int64 conversion the register form would apply at runtime, making it
// foldable into opKeyC.
func keyLitConst(n *lang.Num) (int64, bool) {
	kk := int64(n.Val)
	return kk, float64(kk) == n.Val && kk >= 0 && kk <= 1<<30
}

// collectKeyLits pre-assigns one pinned float register per distinct
// literal key subscript in the body, and one per distinct numeric
// literal. Pinned registers sit between the locals and the statement
// temps and survive statement boundaries: one executed opKeyC serves
// every dominated use of the same key literal — the key slice is fixed
// for the whole iteration — and constant pins are written once at
// kernel construction, so a literal operand costs no instruction at
// all.
func (c *comp) collectKeyLits(body []lang.Stmt) {
	var visitExpr func(e lang.Expr)
	visitExpr = func(e lang.Expr) {
		switch x := e.(type) {
		case *lang.Num:
			key := math.Float64bits(x.Val)
			if _, have := c.numPin[key]; !have {
				c.numPin[key] = c.tempBase
				c.pinVals = append(c.pinVals, pinVal{reg: c.tempBase, val: x.Val})
				c.tempBase++
			}
		case *lang.UnOp:
			visitExpr(x.X)
		case *lang.BinOp:
			visitExpr(x.L)
			visitExpr(x.R)
		case *lang.Call:
			for _, a := range x.Args {
				visitExpr(a)
			}
		case *lang.RangeExpr:
			if !x.Full {
				visitExpr(x.Lo)
				visitExpr(x.Hi)
			}
		case *lang.Index:
			if x.Base == c.loop.KeyVar && len(x.Subs) == 1 {
				if n, isNum := x.Subs[0].(*lang.Num); isNum {
					if kk, ok := keyLitConst(n); ok {
						if _, have := c.keyPin[kk]; !have {
							c.keyPin[kk] = c.tempBase
							c.tempBase++
						}
						return
					}
				}
			}
			for _, s := range x.Subs {
				visitExpr(s)
			}
		}
	}
	var visitStmts func(stmts []lang.Stmt)
	visitStmts = func(stmts []lang.Stmt) {
		for _, st := range stmts {
			switch s := st.(type) {
			case *lang.Assign:
				visitExpr(s.Target)
				visitExpr(s.Value)
			case *lang.If:
				visitExpr(s.Cond)
				visitStmts(s.Then)
				visitStmts(s.Else)
			case *lang.ForRange:
				visitExpr(s.Lo)
				visitExpr(s.Hi)
				visitStmts(s.Body)
			case *lang.ExprStmt:
				visitExpr(s.X)
			}
		}
	}
	visitStmts(body)
}

func (c *comp) allocF() int32 {
	r := c.fTop
	c.fTop++
	if c.fTop > c.maxF {
		c.maxF = c.fTop
	}
	return r
}

func (c *comp) allocV() int32 {
	r := c.vTop
	c.vTop++
	if c.vTop > c.maxV {
		c.maxV = c.vTop
	}
	return r
}

func (c *comp) allocB() int32 {
	r := c.bTop
	c.bTop++
	if c.bTop > c.maxB {
		c.maxB = c.bTop
	}
	return r
}

func (c *comp) constIdx(v float64) int32 {
	key := math.Float64bits(v)
	if i, ok := c.constIx[key]; ok {
		return i
	}
	i := int32(len(c.consts))
	c.consts = append(c.consts, v)
	c.constIx[key] = i
	return i
}

func (c *comp) nameIdx(n string) int32 {
	if i, ok := c.nameIx[n]; ok {
		return i
	}
	i := int32(len(c.names))
	c.names = append(c.names, n)
	c.nameIx[n] = i
	return i
}

func (c *comp) infoIdx(op, name string) int32 {
	c.infos = append(c.infos, opInfo{op: op, name: name})
	return int32(len(c.infos) - 1)
}

// The chk* helpers emit a definedness or nil check only when the
// tracked state cannot prove it passes; a check that runs successfully
// proves the property for the rest of the path, so each also updates
// the state.

func (c *comp) chkF(slot int32, name string) {
	if c.defs.f[slot] {
		return
	}
	c.emit(opChkF, slot, c.nameIdx(name), 0, 0, 0)
	c.defs.f[slot] = true
}

func (c *comp) chkB(slot int32, name string) {
	if c.defs.b[slot] {
		return
	}
	c.emit(opChkB, slot, c.nameIdx(name), 0, 0, 0)
	c.defs.b[slot] = true
}

func (c *comp) chkV(slot int32, name string) {
	if c.defs.v[slot] {
		return
	}
	c.emit(opChkV, slot, c.nameIdx(name), 0, 0, 0)
	c.defs.v[slot] = true
}

func (c *comp) chkVElem(slot int32, name string, sel int32) {
	if c.defs.v[slot] {
		return
	}
	c.emit(opChkVElem, slot, c.nameIdx(name), sel, 0, 0)
	c.defs.v[slot] = true
}

func (c *comp) arrChk(ai int32, name string, sel int32) {
	if c.defs.arr[ai] {
		return
	}
	c.emit(opArrChk, ai, c.nameIdx(name), sel, 0, 0)
	c.defs.arr[ai] = true
}

func (c *comp) bufChk(bi int32, name string) {
	if c.defs.buf[bi] {
		return
	}
	c.emit(opBufChk, bi, c.nameIdx(name), 0, 0, 0)
	c.defs.buf[bi] = true
}

// copyPropF retargets the instruction that just produced a scalar temp
// at the assignment's local slot, eliding the MovF. Every lowerFloat
// shape that returns a temp returns the destination of the instruction
// it emitted last, so matching (last instruction, fr-writing opcode,
// dst == rhs temp) identifies the producer; the temp dies at the
// statement boundary, so renaming its destination is safe.
func (c *comp) copyPropF(slot, rhs int32) bool {
	// Pinned key registers (< tempBase) are excluded: retargeting one
	// would leave the pin unwritten while the CSE facts say it holds.
	if rhs < c.tempBase || len(c.code) == 0 {
		return false
	}
	in := &c.code[len(c.code)-1]
	if in.a != rhs {
		return false
	}
	switch in.op {
	case opConstF, opLoadG, opLoadGU, opAddF, opSubF, opMulF, opDivF, opPowF,
		opNegF, opAbsF, opAbs2F, opSqrtF, opExpF, opLogF, opFloorF, opCeilF,
		opSigmoidF, opMinF, opMaxF, opRandF, opKeyF, opKeyC, opLenF, opDotF,
		opVElemLd, opLdPtF, opArithFC, opArithCF, opArithFG, opArithGF,
		opMinFC, opMaxFC, opVElemArith, opLdPtMinC, opLdPtMaxC:
		in.a = slot
		return true
	}
	return false
}

// copyPropB is copyPropF for boolean temps.
func (c *comp) copyPropB(slot, rhs int32) bool {
	if rhs < c.nBoolLoc || len(c.code) == 0 {
		return false
	}
	in := &c.code[len(c.code)-1]
	if in.a != rhs {
		return false
	}
	switch in.op {
	case opConstB, opEqB, opNeB, opLtB, opLeB, opGtB, opGeB:
		in.a = slot
		return true
	}
	return false
}

// copyPropV is copyPropF for vector temps. Retargeting only renames
// which vr header receives the op's scratch slice; aliasing is
// unchanged because vecStore mode already forbids view-returning
// shapes on assignment right-hand sides.
func (c *comp) copyPropV(slot, rhs int32) bool {
	if rhs < c.nVecLoc || len(c.code) == 0 {
		return false
	}
	in := &c.code[len(c.code)-1]
	if in.a != rhs {
		return false
	}
	switch in.op {
	case opVBinVV, opVBinVS, opVBinSV, opVNegV, opZerosV, opAxpyRow, opRowMatV:
		in.a = slot
		return true
	}
	return false
}

// arithOp maps an arithmetic selector to its register-register opcode.
func arithOp(sel int32) opcode {
	switch sel {
	case selAdd:
		return opAddF
	case selSub:
		return opSubF
	case selMul:
		return opMulF
	case selDiv:
		return opDivF
	}
	return opPowF
}

// finalize removes definedness bookkeeping no surviving check reads:
// after check elision, a local whose every read was dominated by a
// definition has no opChk/opComp consumer left, so its opDef writes are
// dead. The pass drops them and rewrites the absolute jump targets.
func (c *comp) finalize() {
	usedF := make([]bool, c.maxF)
	usedB := make([]bool, c.maxB)
	usedV := make([]bool, c.maxV)
	for _, in := range c.code {
		switch in.op {
		case opChkF, opCompF:
			usedF[in.a] = true
		case opChkB:
			usedB[in.a] = true
		case opChkV, opChkVElem, opVCompS, opVCompV:
			usedV[in.a] = true
		}
	}
	keep := make([]bool, len(c.code))
	n := 0
	for i, in := range c.code {
		keep[i] = true
		switch in.op {
		case opDefF:
			keep[i] = usedF[in.a]
		case opDefB:
			keep[i] = usedB[in.a]
		case opDefV:
			keep[i] = usedV[in.a]
		}
		if keep[i] {
			n++
		}
	}
	if n == len(c.code) {
		return
	}
	c.compact(keep)
}

// compact drops the instructions keep marks false and rewrites the
// absolute jump targets. A dropped target maps to the next retained
// instruction, which is where the dropped no-op would have fallen
// through to.
func (c *comp) compact(keep []bool) {
	newPC := make([]int32, len(c.code))
	np := int32(0)
	for i := range c.code {
		newPC[i] = np
		if keep[i] {
			np++
		}
	}
	out := make([]instr, 0, int(np))
	for i, in := range c.code {
		if !keep[i] {
			continue
		}
		switch in.op {
		case opJmp, opJmpIfNot, opJmpCmpNot:
			in.a = newPC[in.a]
		case opForCond:
			in.c = newPC[in.c]
		case opForNext:
			in.b = newPC[in.b]
			in.c = newPC[in.c]
		}
		out = append(out, in)
	}
	c.code = out
}

// fuseSuper runs after finalize. It collapses adjacent instruction
// groups whose unfused forms round-trip intermediate temps through the
// register file into one superinstruction each. Fusion never reorders
// anything: every group is contiguous, no jump lands inside it, and
// the fused op executes the components in the original order, so fault
// order, messages, and each intermediate rounding step are identical
// to the unfused code. Groups that elide a temp's write additionally
// require the temp to be dead outside the group.
func (c *comp) fuseSuper() {
	targets := map[int32]bool{}
	for _, in := range c.code {
		switch in.op {
		case opJmp, opJmpIfNot, opJmpCmpNot:
			targets[in.a] = true
		case opForCond:
			targets[in.c] = true
		case opForNext:
			targets[in.b] = true
			targets[in.c] = true
		}
	}
	keep := make([]bool, len(c.code))
	for i := range keep {
		keep[i] = true
	}
	changed := false
	inside := func(j int) bool { return j < len(c.code) && !targets[int32(j)] }
	for i := 0; i < len(c.code); i++ {
		in1 := c.code[i]
		// (fr[b1]+gl) * (fr[b2]+gl): two global-add ArithFGs feeding a
		// MulF, all three temps dying at the multiply.
		if in1.op == opArithFG && in1.d == selAdd && inside(i+1) && inside(i+2) {
			in2, in3 := c.code[i+1], c.code[i+2]
			if in2.op == opArithFG && in2.d == selAdd && in3.op == opMulF &&
				in3.b == in1.a && in3.c == in2.a && in1.a != in2.a &&
				in2.b != in1.a &&
				in1.a >= c.tempBase && in2.a >= c.tempBase &&
				c.tempDeadAfter(in1.a, i+2) && c.tempDeadAfter(in2.a, i+2) {
				fi := int32(len(c.fused))
				c.fused = append(c.fused, fentry{
					a1: in1.b, b1: in1.c, c1: in1.e,
					a2: in2.b, b2: in2.c, c2: in2.e,
				})
				c.code[i] = instr{op: opAddG2Mul, a: in3.a, b: fi}
				keep[i+1], keep[i+2] = false, false
				changed = true
				i += 2
				continue
			}
		}
		// fr[x] / (fr[b]+gl): a global-add ArithFG whose dead temp is
		// the divisor of the next DivF.
		if in1.op == opArithFG && in1.d == selAdd && inside(i+1) {
			in2 := c.code[i+1]
			if in2.op == opDivF && in2.c == in1.a && in2.b != in1.a &&
				in1.a >= c.tempBase && c.tempDeadAfter(in1.a, i+1) {
				c.code[i] = instr{op: opAddGDivR, a: in2.a, b: in1.b, c: in1.c, d: in2.b, e: in1.e}
				keep[i+1] = false
				changed = true
				i++
				continue
			}
		}
		// Two adjacent clamped point loads share one dispatch. Blocked
		// when the first load's destination feeds the second access's
		// subscripts (the second load must see the new value).
		if (in1.op == opLdPtMinC || in1.op == opLdPtMaxC) && inside(i+1) {
			in2 := c.code[i+1]
			if (in2.op == opLdPtMinC || in2.op == opLdPtMaxC) &&
				!c.accReads(in2.b, in1.a) {
				fi := int32(len(c.fused))
				c.fused = append(c.fused, fentry{
					a1: in1.a, b1: in1.b, c1: in1.c, d1: b2i(in1.op == opLdPtMaxC),
					a2: in2.a, b2: in2.b, c2: in2.c, d2: b2i(in2.op == opLdPtMaxC),
				})
				c.code[i] = instr{op: opLdPt2C, b: fi}
				keep[i+1] = false
				changed = true
				i++
				continue
			}
		}
		// v[i] = x; acc = acc2 + v[i]: a plain element store whose value
		// is immediately accumulated back out of the same element.
		if in1.op == opVElemSt && in1.d < 0 && inside(i+1) {
			in2 := c.code[i+1]
			if in2.op == opVElemArith && in2.d == selAdd &&
				in2.c == in1.a && in2.e == in1.b {
				c.code[i] = instr{op: opVStAdd, a: in1.a, b: in1.b, c: in1.c, d: in2.a, e: in2.b}
				keep[i+1] = false
				changed = true
				i++
				continue
			}
		}
	}
	if changed {
		c.compact(keep)
	}
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// accReads reports whether point/range access site ai reads scalar
// register r for a subscript or range bound.
func (c *comp) accReads(ai, r int32) bool {
	acc := &c.accs[ai]
	for _, s := range acc.subs {
		if s == r {
			return true
		}
	}
	return acc.loReg == r || acc.hiReg == r
}

func (c *comp) bufReads(bi, r int32) bool {
	for _, s := range c.baccs[bi].subs {
		if s == r {
			return true
		}
	}
	return false
}

// tempDeadAfter reports whether no read of float register t is
// reachable from code[hi+1] before a write to t kills the value. The
// walk follows every control-flow successor, so a statement that later
// reuses the same temp register (its own write starts a new live
// range) does not block fusion, while a genuine downstream read —
// including one reached through a loop back-edge — does.
func (c *comp) tempDeadAfter(t int32, hi int) bool {
	seen := make([]bool, len(c.code))
	work := []int{hi + 1}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		if pc >= len(c.code) || seen[pc] {
			continue
		}
		seen[pc] = true
		in := c.code[pc]
		if c.readsF(in, t) {
			return false
		}
		if c.writesF(in, t) {
			continue
		}
		switch in.op {
		case opHalt:
		case opJmp:
			work = append(work, int(in.a))
		case opJmpIfNot, opJmpCmpNot:
			work = append(work, int(in.a), pc+1)
		case opForCond:
			work = append(work, int(in.c), pc+1)
		case opForNext:
			work = append(work, int(in.b), int(in.c))
		default:
			work = append(work, pc+1)
		}
	}
	return true
}

// writesF reports whether executing in writes float register r. Claiming
// an op does not write is the conservative direction — the liveness walk
// just keeps scanning past it.
func (c *comp) writesF(in instr, r int32) bool {
	switch in.op {
	case opConstF, opMovF, opLoadG, opCompF, opAddF, opSubF, opMulF, opDivF,
		opPowF, opNegF, opAbsF, opAbs2F, opSqrtF, opExpF, opLogF, opFloorF,
		opCeilF, opSigmoidF, opMinF, opMaxF, opRandF, opKeyF, opLenF, opDotF,
		opKeyC, opLoadGU, opArithFC, opArithCF, opArithFG, opArithGF,
		opMinFC, opMaxFC, opVElemArith, opLdPtMinC, opLdPtMaxC, opVElemLd,
		opLdPtF, opAddG2Mul, opAddGDivR:
		return in.a == r
	case opForCond:
		return in.b == r
	case opForNext, opVStAdd:
		return in.d == r
	case opLdPt2C:
		f := c.fused[in.b]
		return f.a1 == r || f.a2 == r
	}
	return false
}

// readsF reports whether executing in reads float register r. Array and
// buffer operands read their subscript registers through the access
// tables. Unknown opcodes conservatively read everything.
func (c *comp) readsF(in instr, r int32) bool {
	switch in.op {
	case opHalt, opConstF, opChkF, opDefF, opLoadG, opRandF, opKeyC, opLoadGU,
		opLenF, opDotF, opConstB, opMovB, opChkB, opDefB, opChkV, opChkVElem,
		opDefV, opMovV, opVCompV, opVBinVV, opVNegV, opArrChk, opBufChk,
		opJmp, opJmpIfNot, opForCond, opForNext:
		return false
	case opMovF, opStoreG, opCompG, opKeyF, opArithFC, opArithCF, opArithFG,
		opArithGF, opMinFC, opMaxFC, opVCompS, opZerosV, opVBinSV,
		opNegF, opAbsF, opAbs2F, opSqrtF, opExpF, opLogF, opFloorF, opCeilF,
		opSigmoidF:
		return in.b == r
	case opCompF:
		return in.a == r || in.b == r
	case opAddF, opSubF, opMulF, opDivF, opPowF, opMinF, opMaxF,
		opEqB, opNeB, opLtB, opLeB, opGtB, opGeB:
		return in.b == r || in.c == r
	case opVElemArith:
		return in.b == r || in.e == r
	case opVElemLd:
		return in.c == r
	case opVElemSt:
		return in.b == r || in.c == r
	case opVBinVS, opAxpyRow:
		return in.c == r
	case opLdPtF, opLdPtMinC, opLdPtMaxC, opRowViewV, opRowMatV:
		return c.accReads(in.b, r)
	case opStPtF, opRowUpdS:
		return in.b == r || c.accReads(in.a, r)
	case opStPtC, opRowStV, opRowUpdV:
		return c.accReads(in.a, r)
	case opBufPut:
		return in.b == r || c.bufReads(in.a, r)
	case opBufPutC:
		return c.bufReads(in.a, r)
	case opJmpCmpNot:
		return in.b == r || (in.e == 0 && in.c == r)
	case opForInit:
		return (in.d&1 == 0 && in.b == r) || (in.d&2 == 0 && in.c == r)
	case opLdPt2C:
		f := c.fused[in.b]
		return c.accReads(f.b1, r) || c.accReads(f.b2, r)
	case opAddG2Mul:
		f := c.fused[in.b]
		return f.a1 == r || f.a2 == r
	case opAddGDivR:
		return in.b == r || in.d == r
	case opVStAdd:
		return in.b == r || in.c == r || in.e == r
	}
	return true
}

func (c *comp) newScratch() int32 {
	id := c.nScratch
	c.nScratch++
	return id
}

func (c *comp) newIdx(n int) int32 {
	c.idxSizes = append(c.idxSizes, n)
	return int32(len(c.idxSizes) - 1)
}

func arithSel(op byte) int32 {
	switch op {
	case '+':
		return selAdd
	case '-':
		return selSub
	case '*':
		return selMul
	case '/':
		return selDiv
	}
	return selPow
}

func (c *comp) lowerStmts(body []lang.Stmt) {
	for _, st := range body {
		c.resetTemps()
		c.lowerStmt(st)
	}
}

func (c *comp) lowerStmt(st lang.Stmt) {
	switch s := st.(type) {
	case *lang.Assign:
		c.lowerAssign(s)
	case *lang.If:
		jElse := c.lowerCondJump(s.Cond)
		save := c.defs.clone()
		c.lowerStmts(s.Then)
		if len(s.Else) > 0 {
			jEnd := c.emit(opJmp, 0, 0, 0, 0, 0)
			c.patch(jElse, c.here())
			thenDefs := c.defs
			c.defs = save
			c.lowerStmts(s.Else)
			c.defs.intersect(thenDefs)
			c.patch(jEnd, c.here())
		} else {
			c.patch(jElse, c.here())
			// Without an else the branch may be skipped entirely, so
			// only facts established before it survive.
			c.defs = save
		}
	case *lang.ForRange:
		// Literal bounds fold into opForInit (flag bits in d); constants
		// evaluate to no code, so the lo-before-hi order is preserved.
		var flags, lo, hi int32
		if n, isNum := s.Lo.(*lang.Num); isNum {
			flags |= 1
			lo = c.constIdx(n.Val)
		} else {
			lo = c.lowerFloat(s.Lo)
		}
		if n, isNum := s.Hi.(*lang.Num); isNum {
			flags |= 2
			hi = c.constIdx(n.Val)
		} else {
			hi = c.lowerFloat(s.Hi)
		}
		slot, ok := c.res.FloatSlot(s.Var)
		if !ok {
			c.nc(s.At, "inner loop variable %q has no float slot", s.Var)
		}
		forID := c.nFor
		c.nFor++
		c.emit(opForInit, forID, lo, hi, flags, 0)
		head := c.here()
		cond := c.emit(opForCond, forID, int32(slot), 0, 0, 0)
		// The body may run zero times: facts it establishes (including
		// the loop variable, which opForCond binds per trip) die with it.
		save := c.defs.clone()
		c.defs.f[slot] = true
		c.lowerStmts(s.Body)
		// The fused for-next re-checks the bound, spends the budget, and
		// binds the loop variable itself — one dispatch per trip instead
		// of a jump back through opForCond, which now only runs on entry.
		next := c.emit(opForNext, forID, int32(head+1), 0, int32(slot), 0)
		exit := int32(c.here())
		c.code[cond].c = exit
		c.code[next].c = exit
		c.defs = save
	case *lang.ExprStmt:
		switch c.res.ExprKind(s.X) {
		case lang.KindVec:
			c.lowerVec(s.X, vecConsume)
		case lang.KindBool:
			c.lowerBool(s.X)
		default:
			c.lowerFloat(s.X)
		}
	default:
		c.nc(c.loop.At, "unsupported statement %T", st)
	}
}

// vecMode mirrors the closure backend's result-usage classification.
type vecMode int

const (
	vecConsume vecMode = iota
	vecStore
	vecWrite
)

func (c *comp) lowerAssign(s *lang.Assign) {
	switch t := s.Target.(type) {
	case *lang.Ident:
		c.lowerIdentAssign(s, t)
	case *lang.Index:
		if slot, isVec := c.res.VecSlot(t.Base); isVec && t.Base != c.loop.KeyVar {
			c.lowerVecElemAssign(s, t, int32(slot))
			return
		}
		if bi, isBuf := c.res.BufferIndex(t.Base); isBuf {
			c.lowerBufferWrite(s, t, int32(bi))
			return
		}
		c.lowerArrayWrite(s, t)
	default:
		c.nc(s.At, "bad assignment target %s", s.Target)
	}
}

func (c *comp) lowerIdentAssign(s *lang.Assign, t *lang.Ident) {
	name := t.Name
	if gs, isGlobal := c.res.GlobalSlot(name); isGlobal {
		rhs := c.lowerFloat(s.Value)
		if s.Op == "=" {
			c.emit(opStoreG, int32(gs), rhs, 0, 0, 0)
			c.defs.g[gs] = true
			return
		}
		c.emit(opCompG, int32(gs), rhs, arithSel(s.Op[0]), c.infoIdx(s.Op, name), 0)
		c.defs.g[gs] = true
		return
	}
	kind, _ := c.res.LocalKind(name)
	switch kind {
	case lang.KindFloat:
		slot, _ := c.res.FloatSlot(name)
		rhs := c.lowerFloat(s.Value)
		if s.Op == "=" {
			if rhs != int32(slot) && !c.copyPropF(int32(slot), rhs) {
				c.emit(opMovF, int32(slot), rhs, 0, 0, 0)
			}
			c.emit(opDefF, int32(slot), 0, 0, 0, 0)
			c.defs.f[slot] = true
			return
		}
		if c.defs.f[slot] {
			// The compound's undefined-variable check cannot fire.
			c.emit(arithOp(arithSel(s.Op[0])), int32(slot), int32(slot), rhs, 0, 0)
			return
		}
		c.emit(opCompF, int32(slot), rhs, arithSel(s.Op[0]), c.infoIdx(s.Op, name), 0)
		c.defs.f[slot] = true
	case lang.KindBool:
		if s.Op != "=" {
			c.nc(s.At, "compound assignment to boolean %q", name)
		}
		slot, _ := c.res.BoolSlot(name)
		rhs := c.lowerBool(s.Value)
		if rhs != int32(slot) && !c.copyPropB(int32(slot), rhs) {
			c.emit(opMovB, int32(slot), rhs, 0, 0, 0)
		}
		c.emit(opDefB, int32(slot), 0, 0, 0, 0)
		c.defs.b[slot] = true
	case lang.KindVec:
		slot, _ := c.res.VecSlot(name)
		if s.Op == "=" {
			rhs := c.lowerVec(s.Value, vecStore)
			if rhs != int32(slot) && !c.copyPropV(int32(slot), rhs) {
				c.emit(opMovV, int32(slot), rhs, 0, 0, 0)
			}
			c.emit(opDefV, int32(slot), 0, 0, 0, 0)
			c.defs.v[slot] = true
			return
		}
		sel := arithSel(s.Op[0])
		sid := c.newScratch()
		if c.res.ExprKind(s.Value) == lang.KindFloat {
			rhs := c.lowerFloat(s.Value)
			c.emit(opVCompS, int32(slot), rhs, sel, sid, c.infoIdx(s.Op, name))
			c.defs.v[slot] = true
			return
		}
		rhs := c.lowerVec(s.Value, vecConsume)
		c.emit(opVCompV, int32(slot), rhs, sel, sid, c.infoIdx(s.Op, name))
		c.defs.v[slot] = true
	default:
		c.nc(s.At, "assignment to %q has no inferable type", name)
	}
}

func (c *comp) lowerVecElemAssign(s *lang.Assign, t *lang.Index, slot int32) {
	rhs := c.lowerFloat(s.Value)
	c.chkVElem(slot, t.Base, selWrite)
	sub := c.lowerFloat(t.Subs[0])
	sel := int32(-1)
	if s.Op != "=" {
		sel = arithSel(s.Op[0])
	}
	c.emit(opVElemSt, slot, sub, rhs, sel, 0)
}

func (c *comp) lowerBufferWrite(s *lang.Assign, t *lang.Index, bi int32) {
	// A literal value folds into the put; constants evaluate to no code,
	// so skipping the register keeps the evaluation order.
	rhs, rhsConst := int32(-1), int32(-1)
	if n, isNum := s.Value.(*lang.Num); isNum {
		rhsConst = c.constIdx(n.Val)
	} else {
		rhs = c.lowerFloat(s.Value)
	}
	c.bufChk(bi, t.Base)
	subs := make([]int32, len(t.Subs))
	for i, sub := range t.Subs {
		subs[i] = c.lowerFloat(sub)
	}
	c.baccs = append(c.baccs, bufAccess{
		bi:      bi,
		nameIdx: c.nameIdx(t.Base),
		neg:     s.Op == "-=",
		subs:    subs,
		ii:      c.newIdx(len(subs)),
	})
	if rhsConst >= 0 {
		c.emit(opBufPutC, int32(len(c.baccs)-1), rhsConst, 0, 0, 0)
		return
	}
	c.emit(opBufPut, int32(len(c.baccs)-1), rhs, 0, 0, 0)
}

// newAccess evaluates the subscripts of x in dimension order into
// registers (lo before hi at the range dimension) and records the
// site's static shape. The opArrChk preceding the subscript evaluation
// must already be emitted by the caller.
func (c *comp) newAccess(x *lang.Index, ai int) int32 {
	dims := c.res.ArrayDims(ai)
	acc := access{
		ai:       int32(ai),
		nameIdx:  c.nameIdx(x.Base),
		rangeDim: -1,
		dims:     dims,
		subs:     make([]int32, len(dims)),
		loReg:    -1,
		hiReg:    -1,
		ri:       -1,
		sid:      -1,
		sel:      -1,
	}
	for d, sub := range x.Subs {
		if r, isRange := sub.(*lang.RangeExpr); isRange {
			acc.rangeDim = int32(d)
			acc.full = r.Full
			acc.subs[d] = -1
			if r.Full {
				acc.extent = dims[d]
			} else {
				acc.loReg = c.lowerFloat(r.Lo)
				acc.hiReg = c.lowerFloat(r.Hi)
			}
			continue
		}
		acc.subs[d] = c.lowerFloat(sub)
	}
	acc.ii = c.newIdx(len(dims))
	c.accs = append(c.accs, acc)
	return int32(len(c.accs) - 1)
}

func (c *comp) lowerArrayWrite(s *lang.Assign, t *lang.Index) {
	ai, isArr := c.res.ArrayIndex(t.Base)
	if !isArr {
		c.nc(t.At, "write to unknown array %q", t.Base)
	}
	hasRange := false
	for _, sub := range t.Subs {
		if _, isRange := sub.(*lang.RangeExpr); isRange {
			hasRange = true
		}
	}
	if !hasRange {
		sel := int32(-1)
		if s.Op != "=" {
			sel = arithSel(s.Op[0])
		}
		// A literal value folds into the store; constants evaluate to no
		// code, so skipping the register keeps the evaluation order.
		if n, isNum := s.Value.(*lang.Num); isNum {
			c.arrChk(int32(ai), t.Base, selWrite)
			aidx := c.newAccess(t, ai)
			c.emit(opStPtC, aidx, c.constIdx(n.Val), sel, 0, 0)
			return
		}
		rhs := c.lowerFloat(s.Value)
		c.arrChk(int32(ai), t.Base, selWrite)
		aidx := c.newAccess(t, ai)
		c.emit(opStPtF, aidx, rhs, sel, 0, 0)
		return
	}
	if s.Op == "=" {
		rhs := c.lowerVec(s.Value, vecWrite)
		c.arrChk(int32(ai), t.Base, selWrite)
		aidx := c.newAccess(t, ai)
		c.emit(opRowStV, aidx, rhs, 0, 0, 0)
		return
	}
	sel := arithSel(s.Op[0])
	if c.res.ExprKind(s.Value) == lang.KindFloat {
		rhs := c.lowerFloat(s.Value)
		c.arrChk(int32(ai), t.Base, selWrite)
		aidx := c.newAccess(t, ai)
		c.accs[aidx].sel = sel
		c.accs[aidx].sid = c.newScratch()
		c.emit(opRowUpdS, aidx, rhs, 0, 0, 0)
		return
	}
	rhs := c.lowerVec(s.Value, vecWrite)
	c.arrChk(int32(ai), t.Base, selWrite)
	aidx := c.newAccess(t, ai)
	c.accs[aidx].sel = sel
	c.accs[aidx].sid = c.newScratch()
	c.emit(opRowUpdV, aidx, rhs, 0, 0, 0)
}

func (c *comp) lowerFloat(e lang.Expr) int32 {
	switch x := e.(type) {
	case *lang.Num:
		// Literals live in pinned registers written at kernel
		// construction; referencing one emits nothing.
		if pin, ok := c.numPin[math.Float64bits(x.Val)]; ok {
			return pin
		}
		dst := c.allocF()
		c.emit(opConstF, dst, c.constIdx(x.Val), 0, 0, 0)
		return dst
	case *lang.Ident:
		name := x.Name
		if gs, isGlobal := c.res.GlobalSlot(name); isGlobal {
			if _, isLocal := c.res.LocalKind(name); !isLocal {
				dst := c.allocF()
				if c.defs.g[gs] {
					c.emit(opLoadGU, dst, int32(gs), 0, 0, 0)
					return dst
				}
				c.emit(opLoadG, dst, int32(gs), c.nameIdx(name), 0, 0)
				c.defs.g[gs] = true
				return dst
			}
		}
		slot, ok := c.res.FloatSlot(name)
		if !ok {
			c.nc(x.At, "variable %q has no float slot", name)
		}
		c.chkF(int32(slot), name)
		return int32(slot)
	case *lang.UnOp:
		// Constant negation folds: -(c) == -c bitwise for float64.
		if n, isNum := x.X.(*lang.Num); isNum {
			dst := c.allocF()
			c.emit(opConstF, dst, c.constIdx(-n.Val), 0, 0, 0)
			return dst
		}
		v := c.lowerFloat(x.X)
		dst := c.allocF()
		c.emit(opNegF, dst, v, 0, 0, 0)
		return dst
	case *lang.BinOp:
		switch x.Op {
		case "+", "-", "*", "/", "^":
		default:
			c.nc(x.At, "operator %q is not a scalar operator", x.Op)
		}
		sel := arithSel(x.Op[0])
		// Fused operand shapes. Each keeps the unfused evaluation order:
		// a constant "evaluates" to no code, so folding it into the op is
		// order-neutral wherever it sits; a global folds only where its
		// definedness check already ran last (right operand), or where
		// the other operand's lowering is provably code-free.
		if n, isNum := x.R.(*lang.Num); isNum {
			l := c.lowerFloat(x.L)
			dst := c.allocF()
			c.emit(opArithFC, dst, l, c.constIdx(n.Val), sel, 0)
			return dst
		}
		if n, isNum := x.L.(*lang.Num); isNum {
			r := c.lowerFloat(x.R)
			dst := c.allocF()
			c.emit(opArithCF, dst, r, c.constIdx(n.Val), sel, 0)
			return dst
		}
		if gs, ok := c.globalOperand(x.R); ok {
			l := c.lowerFloat(x.L)
			dst := c.allocF()
			c.emit(opArithFG, dst, l, int32(gs), sel, c.globalChk(gs, x.R.(*lang.Ident).Name))
			return dst
		}
		if gs, ok := c.globalOperand(x.L); ok {
			if slot, free := c.codeFreeFloat(x.R); free {
				dst := c.allocF()
				c.emit(opArithGF, dst, slot, int32(gs), sel, c.globalChk(gs, x.L.(*lang.Ident).Name))
				return dst
			}
		}
		l := c.lowerFloat(x.L)
		r := c.lowerFloat(x.R)
		// When the right operand was a vector-element load into a
		// statement temp, fold the arithmetic into the load: the left
		// operand is already evaluated and no code runs between the load
		// and the op, so fault order is unchanged.
		if r >= c.tempBase && len(c.code) > 0 {
			if in := &c.code[len(c.code)-1]; in.op == opVElemLd && in.a == r {
				in.op = opVElemArith
				in.e = in.c
				in.c = in.b
				in.b = l
				in.d = sel
				return r
			}
		}
		dst := c.allocF()
		c.emit(arithOp(sel), dst, l, r, 0, 0)
		return dst
	case *lang.Call:
		return c.lowerFloatCall(x)
	case *lang.Index:
		return c.lowerFloatIndex(x)
	}
	c.nc(c.loop.At, "unsupported scalar expression %T", e)
	return 0
}

// globalOperand reports whether e is a read of a pure global float
// (not shadowed by a local) and returns its global slot.
func (c *comp) globalOperand(e lang.Expr) (int, bool) {
	x, ok := e.(*lang.Ident)
	if !ok {
		return 0, false
	}
	gs, isGlobal := c.res.GlobalSlot(x.Name)
	if !isGlobal {
		return 0, false
	}
	if _, isLocal := c.res.LocalKind(x.Name); isLocal {
		return 0, false
	}
	return gs, true
}

// globalChk returns the fused check operand for a global read: -1 when
// a dominating check already proved definedness, else the name index
// the runtime check reports.
func (c *comp) globalChk(gs int, name string) int32 {
	if c.defs.g[gs] {
		return -1
	}
	c.defs.g[gs] = true
	return c.nameIdx(name)
}

// codeFreeFloat reports whether lowering e emits no instructions — a
// read of a definitely-defined float local — and returns its register.
func (c *comp) codeFreeFloat(e lang.Expr) (int32, bool) {
	x, ok := e.(*lang.Ident)
	if !ok {
		return 0, false
	}
	if _, isGlobal := c.res.GlobalSlot(x.Name); isGlobal {
		if _, isLocal := c.res.LocalKind(x.Name); !isLocal {
			return 0, false
		}
	}
	slot, ok := c.res.FloatSlot(x.Name)
	if !ok || !c.defs.f[slot] {
		return 0, false
	}
	return int32(slot), true
}

func (c *comp) lowerFloatCall(x *lang.Call) int32 {
	switch x.Fn {
	case "rand":
		dst := c.allocF()
		c.emit(opRandF, dst, 0, 0, 0, 0)
		return dst
	case "dot":
		a := c.lowerVec(x.Args[0], vecConsume)
		b := c.lowerVec(x.Args[1], vecConsume)
		dst := c.allocF()
		c.emit(opDotF, dst, a, b, 0, 0)
		return dst
	case "length":
		v := c.lowerVec(x.Args[0], vecConsume)
		dst := c.allocF()
		c.emit(opLenF, dst, v, 0, 0, 0)
		return dst
	case "min", "max":
		a := c.lowerFloat(x.Args[0])
		// A literal second argument folds into the op; NaN selection
		// depends on operand order, so only this side fuses.
		if n, isNum := x.Args[1].(*lang.Num); isNum {
			// When the first argument was a point load that just landed in
			// a statement temp, fold the clamp into the load: no code runs
			// between the two, so fault order is unchanged.
			if a >= c.tempBase && len(c.code) > 0 {
				if in := &c.code[len(c.code)-1]; in.op == opLdPtF && in.a == a {
					if x.Fn == "min" {
						in.op = opLdPtMinC
					} else {
						in.op = opLdPtMaxC
					}
					in.c = c.constIdx(n.Val)
					return a
				}
			}
			dst := c.allocF()
			if x.Fn == "min" {
				c.emit(opMinFC, dst, a, c.constIdx(n.Val), 0, 0)
			} else {
				c.emit(opMaxFC, dst, a, c.constIdx(n.Val), 0, 0)
			}
			return dst
		}
		b := c.lowerFloat(x.Args[1])
		dst := c.allocF()
		if x.Fn == "min" {
			c.emit(opMinF, dst, a, b, 0, 0)
		} else {
			c.emit(opMaxF, dst, a, b, 0, 0)
		}
		return dst
	case "abs", "abs2", "sqrt", "exp", "log", "floor", "ceil", "sigmoid":
		arg := c.lowerFloat(x.Args[0])
		dst := c.allocF()
		var op opcode
		switch x.Fn {
		case "abs":
			op = opAbsF
		case "abs2":
			op = opAbs2F
		case "sqrt":
			op = opSqrtF
		case "exp":
			op = opExpF
		case "log":
			op = opLogF
		case "floor":
			op = opFloorF
		case "ceil":
			op = opCeilF
		default:
			op = opSigmoidF
		}
		c.emit(op, dst, arg, 0, 0, 0)
		return dst
	}
	c.nc(x.At, "unsupported function %q", x.Fn)
	return 0
}

func (c *comp) lowerFloatIndex(x *lang.Index) int32 {
	base := x.Base
	if base == c.loop.KeyVar {
		// A literal subscript folds into the op when it survives the
		// int64 conversion the register form would apply at runtime. The
		// load lands in the literal's pinned register; a dominating
		// opKeyC for the same literal makes later uses free — the key is
		// fixed for the whole iteration, and the first load's bounds
		// check proves every dominated re-check passes.
		if n, isNum := x.Subs[0].(*lang.Num); isNum {
			if kk, ok := keyLitConst(n); ok {
				pin := c.keyPin[kk]
				if !c.defs.key[kk] {
					c.emit(opKeyC, pin, int32(kk), 0, 0, 0)
					c.defs.key[kk] = true
				}
				return pin
			}
		}
		sub := c.lowerFloat(x.Subs[0])
		dst := c.allocF()
		c.emit(opKeyF, dst, sub, 0, 0, 0)
		return dst
	}
	if slot, isVec := c.res.VecSlot(base); isVec {
		// Definedness is checked before the subscript evaluates,
		// matching the closure backend's fall-through semantics.
		c.chkVElem(int32(slot), base, selRead)
		sub := c.lowerFloat(x.Subs[0])
		dst := c.allocF()
		c.emit(opVElemLd, dst, int32(slot), sub, 0, 0)
		return dst
	}
	ai, isArr := c.res.ArrayIndex(base)
	if !isArr {
		c.nc(x.At, "read of unknown array %q", base)
	}
	c.arrChk(int32(ai), base, selRead)
	aidx := c.newAccess(x, ai)
	dst := c.allocF()
	c.emit(opLdPtF, dst, aidx, 0, 0, 0)
	return dst
}

func (c *comp) lowerVec(e lang.Expr, mode vecMode) int32 {
	switch x := e.(type) {
	case *lang.Ident:
		if mode == vecStore {
			c.nc(x.At, "vector aliasing assignment from %q", x.Name)
		}
		slot, ok := c.res.VecSlot(x.Name)
		if !ok {
			c.nc(x.At, "variable %q has no vector slot", x.Name)
		}
		c.chkV(int32(slot), x.Name)
		return int32(slot)
	case *lang.UnOp:
		v := c.lowerVec(x.X, vecConsume)
		dst := c.allocV()
		c.emit(opVNegV, dst, v, c.newScratch(), 0, 0)
		return dst
	case *lang.BinOp:
		return c.lowerVecBin(x)
	case *lang.Call:
		// zeros is the only vector-valued builtin.
		n := c.lowerFloat(x.Args[0])
		dst := c.allocV()
		c.emit(opZerosV, dst, n, c.newScratch(), 0, 0)
		return dst
	case *lang.Index:
		return c.lowerVecIndex(x, mode)
	}
	c.nc(c.loop.At, "unsupported vector expression %T", e)
	return 0
}

func (c *comp) lowerVecBin(x *lang.BinOp) int32 {
	if len(x.Op) != 1 {
		c.nc(x.At, "operator %q is not a vector operator", x.Op)
	}
	switch x.Op[0] {
	case '+', '-', '*', '/', '^':
	default:
		c.nc(x.At, "operator %q is not a vector operator", x.Op)
	}
	lt := c.res.ExprKind(x.L)
	rt := c.res.ExprKind(x.R)
	// AxpyRow fusion: v ± s*w evaluates the three operands in the same
	// order as the unfused closures (l, then s, then w) and rounds the
	// product before the add, so results stay bitwise identical.
	if (x.Op == "+" || x.Op == "-") && lt == lang.KindVec {
		if m, isMul := x.R.(*lang.BinOp); isMul && m.Op == "*" &&
			c.res.ExprKind(m.L) == lang.KindFloat && c.res.ExprKind(m.R) == lang.KindVec {
			l := c.lowerVec(x.L, vecConsume)
			s := c.lowerFloat(m.L)
			w := c.lowerVec(m.R, vecConsume)
			dst := c.allocV()
			c.axpys = append(c.axpys, axpyInfo{w: w, sid: c.newScratch(), sub: x.Op == "-"})
			c.emit(opAxpyRow, dst, l, s, int32(len(c.axpys)-1), 0)
			return dst
		}
	}
	sel := arithSel(x.Op[0])
	sid := c.newScratch()
	switch {
	case lt == lang.KindVec && rt == lang.KindVec:
		l := c.lowerVec(x.L, vecConsume)
		r := c.lowerVec(x.R, vecConsume)
		dst := c.allocV()
		c.emit(opVBinVV, dst, l, r, sel, sid)
		return dst
	case lt == lang.KindVec:
		l := c.lowerVec(x.L, vecConsume)
		r := c.lowerFloat(x.R)
		dst := c.allocV()
		c.emit(opVBinVS, dst, l, r, sel, sid)
		return dst
	default:
		l := c.lowerFloat(x.L)
		r := c.lowerVec(x.R, vecConsume)
		dst := c.allocV()
		c.emit(opVBinSV, dst, l, r, sel, sid)
		return dst
	}
}

func (c *comp) lowerVecIndex(x *lang.Index, mode vecMode) int32 {
	ai, isArr := c.res.ArrayIndex(x.Base)
	if !isArr {
		c.nc(x.At, "read of unknown array %q", x.Base)
	}
	dims := c.res.ArrayDims(ai)
	rangeDim := -1
	full := false
	for d, sub := range x.Subs {
		if r, isRange := sub.(*lang.RangeExpr); isRange {
			rangeDim = d
			full = r.Full
		}
	}
	c.arrChk(int32(ai), x.Base, selRead)
	aidx := c.newAccess(x, ai)
	c.accs[aidx].sid = c.newScratch()
	dst := c.allocV()
	if mode == vecConsume && rangeDim == 0 && full && len(dims) >= 1 {
		c.accs[aidx].ri = c.newIdx(len(dims) - 1)
		c.emit(opRowViewV, dst, aidx, 0, 0, 0)
		return dst
	}
	c.emit(opRowMatV, dst, aidx, 0, 0, 0)
	return dst
}

// lowerCondJump lowers an if condition and emits the branch that skips
// the then-block, fusing float comparisons into a single compare-and-
// branch. Operand evaluation order and faults match the unfused
// opEqB..opGeB + opJmpIfNot pair. Returns the branch's pc for patching.
func (c *comp) lowerCondJump(cond lang.Expr) int {
	if x, ok := cond.(*lang.BinOp); ok {
		sel := int32(-1)
		switch x.Op {
		case "==":
			sel = cmpEq
		case "!=":
			sel = cmpNe
		case "<":
			sel = cmpLt
		case "<=":
			sel = cmpLe
		case ">":
			sel = cmpGt
		case ">=":
			sel = cmpGe
		}
		if sel >= 0 {
			l := c.lowerFloat(x.L)
			if n, isNum := x.R.(*lang.Num); isNum {
				return c.emit(opJmpCmpNot, 0, l, c.constIdx(n.Val), sel, 1)
			}
			r := c.lowerFloat(x.R)
			return c.emit(opJmpCmpNot, 0, l, r, sel, 0)
		}
	}
	b := c.lowerBool(cond)
	return c.emit(opJmpIfNot, 0, b, 0, 0, 0)
}

func (c *comp) lowerBool(e lang.Expr) int32 {
	switch x := e.(type) {
	case *lang.Bool:
		dst := c.allocB()
		v := int32(0)
		if x.Val {
			v = 1
		}
		c.emit(opConstB, dst, v, 0, 0, 0)
		return dst
	case *lang.Ident:
		slot, ok := c.res.BoolSlot(x.Name)
		if !ok {
			c.nc(x.At, "variable %q has no boolean slot", x.Name)
		}
		c.chkB(int32(slot), x.Name)
		return int32(slot)
	case *lang.BinOp:
		l := c.lowerFloat(x.L)
		r := c.lowerFloat(x.R)
		dst := c.allocB()
		switch x.Op {
		case "==":
			c.emit(opEqB, dst, l, r, 0, 0)
		case "!=":
			c.emit(opNeB, dst, l, r, 0, 0)
		case "<":
			c.emit(opLtB, dst, l, r, 0, 0)
		case "<=":
			c.emit(opLeB, dst, l, r, 0, 0)
		case ">":
			c.emit(opGtB, dst, l, r, 0, 0)
		case ">=":
			c.emit(opGeB, dst, l, r, 0, 0)
		default:
			c.nc(x.At, "unsupported boolean expression %s", e)
		}
		return dst
	}
	c.nc(c.loop.At, "unsupported boolean expression %s", e)
	return 0
}
