package lang

// This file exposes the compiler's resolution front end — slot
// assignment and fixpoint type inference — to alternative backends.
// The bytecode VM (internal/lang/vm) lowers the same slot-resolved AST
// to instructions instead of closures; sharing the front end guarantees
// both backends agree on slot numbering, local kinds, and the exact set
// of programs inside the compiled subset. Every NotCompilableError is
// raised here or in the shared inference passes, so a successful
// ResolveLoop means lowering cannot fail.

// VarKind classifies a resolved local variable or expression.
type VarKind uint8

const (
	KindNone VarKind = iota
	KindFloat
	KindVec
	KindBool
)

func (k VarKind) String() string {
	switch k {
	case KindFloat:
		return "scalar"
	case KindVec:
		return "vector"
	case KindBool:
		return "boolean"
	}
	return "undefined"
}

func kindOfVtype(t vtype) VarKind {
	switch t {
	case tFloat:
		return KindFloat
	case tVec:
		return KindVec
	case tBool:
		return KindBool
	}
	return KindNone
}

// DenseAccess is the optional raw-storage contract for fused point and
// row accesses: a dense array that exposes its flat float64 storage and
// per-dimension strides (stride[0] == 1, so a full first-dimension
// range is one contiguous run). Implementations with no dense backing
// return (nil, nil). *dsm.DistArray implements it.
type DenseAccess interface {
	ArrayAccess
	DenseData() (data []float64, stride []int64)
}

// Resolution is the front half of a compilation: types inferred to a
// fixpoint, strict checks passed, and every name assigned its slot. It
// is immutable once returned.
type Resolution struct {
	c *compiler
}

// ResolveLoop runs slot assignment and type inference against the
// environment without lowering. It returns *NotCompilableError for
// loops outside the compiled subset, exactly as CompileLoop does.
func ResolveLoop(loop *Loop, env *CompileEnv) (res *Resolution, err error) {
	defer func() {
		if r := recover(); r != nil {
			if nce, ok := r.(*NotCompilableError); ok {
				res, err = nil, nce
				return
			}
			panic(r)
		}
	}()
	c := &compiler{loop: loop, env: env, types: map[string]vtype{}}
	c.setup()
	c.infer()
	c.assignSlots()
	return &Resolution{c: c}, nil
}

// Loop returns the resolved loop's AST.
func (r *Resolution) Loop() *Loop { return r.c.loop }

// NumFloat, NumVec, and NumBool report the local slot counts per kind.
func (r *Resolution) NumFloat() int { return len(r.c.floatIx) }
func (r *Resolution) NumVec() int   { return len(r.c.vecIx) }
func (r *Resolution) NumBool() int  { return len(r.c.boolIx) }

// ValSlot returns ValVar's float slot, or -1 when the loop has no value
// variable.
func (r *Resolution) ValSlot() int { return r.c.valSlot() }

// LocalKind reports a local variable's inferred kind; ok is false for
// names that are not locals (globals, arrays, buffers, the key tuple).
func (r *Resolution) LocalKind(name string) (VarKind, bool) {
	t, ok := r.c.types[name]
	if !ok {
		return KindNone, false
	}
	return kindOfVtype(t), true
}

// FloatSlot, VecSlot, and BoolSlot resolve a local name to its slot
// within its kind's register file.
func (r *Resolution) FloatSlot(name string) (int, bool) {
	s, ok := r.c.floatIx[name]
	return s, ok
}

func (r *Resolution) VecSlot(name string) (int, bool) {
	s, ok := r.c.vecIx[name]
	return s, ok
}

func (r *Resolution) BoolSlot(name string) (int, bool) {
	s, ok := r.c.boolIx[name]
	return s, ok
}

// Globals returns the global names in slot order. The slice is shared;
// callers must not mutate it.
func (r *Resolution) Globals() []string { return r.c.globalNames }

// GlobalSlot resolves a global name to its slot.
func (r *Resolution) GlobalSlot(name string) (int, bool) {
	s, ok := r.c.globalIx[name]
	return s, ok
}

// Arrays returns the array names in slot order. The slice is shared;
// callers must not mutate it.
func (r *Resolution) Arrays() []string { return r.c.arrayNames }

// ArrayIndex resolves an array name to its slot.
func (r *Resolution) ArrayIndex(name string) (int, bool) {
	s, ok := r.c.arrayIx[name]
	return s, ok
}

// ArrayDims returns array slot ai's compile-time extents. The slice is
// shared; callers must not mutate it.
func (r *Resolution) ArrayDims(ai int) []int64 { return r.c.arrayDims[ai] }

// Buffers returns the buffer names in slot order. The slice is shared;
// callers must not mutate it.
func (r *Resolution) Buffers() []string { return r.c.bufNames }

// BufferIndex resolves a buffer name to its slot.
func (r *Resolution) BufferIndex(name string) (int, bool) {
	s, ok := r.c.bufIx[name]
	return s, ok
}

// ExprKind types an expression of the resolved loop body. Inference has
// already converged, so the call is read-only and idempotent. Calling
// it on an expression outside the resolved body may panic.
func (r *Resolution) ExprKind(e Expr) VarKind {
	return kindOfVtype(r.c.inferExpr(e))
}
