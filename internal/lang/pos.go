package lang

import "fmt"

// Pos is a source position within a DSL program: 1-based line and
// column. The zero Pos marks synthesized nodes (e.g. ASTs built
// programmatically or by the prefetch slicer).
type Pos struct {
	Line int
	Col  int
}

// IsValid reports whether the position refers to real source text.
func (p Pos) IsValid() bool { return p.Line > 0 }

func (p Pos) String() string {
	if !p.IsValid() {
		return "<unknown>"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// NodePos returns the source position of an AST node (expression or
// statement); synthesized nodes yield the zero Pos.
func NodePos(n any) Pos {
	switch x := n.(type) {
	case *Num:
		return x.At
	case *Ident:
		return x.At
	case *BinOp:
		return x.At
	case *UnOp:
		return x.At
	case *Call:
		return x.At
	case *Index:
		return x.At
	case *RangeExpr:
		return x.At
	case *Bool:
		return x.At
	case *Assign:
		return x.At
	case *If:
		return x.At
	case *ForRange:
		return x.At
	case *ExprStmt:
		return x.At
	case *Loop:
		return x.At
	default:
		return Pos{}
	}
}

// SyntaxError is a positioned lexical or syntax error from Lex/Parse.
type SyntaxError struct {
	Pos Pos
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("lang: line %d col %d: %s", e.Pos.Line, e.Pos.Col, e.Msg)
}

// PreambleError is a malformed declaration in a program-file preamble
// (the `array`/`buffer`/`global`/`ordered` block before `---`).
type PreambleError struct {
	Line int
	Msg  string
}

func (e *PreambleError) Error() string {
	return fmt.Sprintf("lang: preamble line %d: %s", e.Line, e.Msg)
}
