package lang

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"orion/internal/dep"
	"orion/internal/dsm"
	"orion/internal/ir"
	"orion/internal/sched"
)

// mfSrc is the SGD MF loop of Fig. 5/6 in DSL form.
const mfSrc = `
for (key, rv) in ratings
    W_row = W[:, key[1]]
    H_row = H[:, key[2]]
    pred = dot(W_row, H_row)
    diff = rv - pred
    W_grad = -2 * diff * H_row
    H_grad = -2 * diff * W_row
    W[:, key[1]] = W_row - step_size * W_grad
    H[:, key[2]] = H_row - step_size * H_grad
end
`

func mfEnv() *Env {
	return &Env{Arrays: map[string][]int64{
		"ratings": {6, 5},
		"W":       {3, 6},
		"H":       {3, 5},
	}}
}

func TestLexBasic(t *testing.T) {
	toks, err := Lex("a = b[1, :] + 2.5e-1 # comment\n")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	want := []TokKind{TokIdent, TokOp, TokIdent, TokLBracket, TokNumber, TokComma,
		TokColon, TokRBracket, TokOp, TokNumber, TokNewline, TokEOF}
	if len(kinds) != len(want) {
		t.Fatalf("got %v", toks)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %v, want %v (all: %v)", i, kinds[i], want[i], toks)
		}
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("a ! b"); err == nil {
		t.Error("expected error for '!'")
	}
	if _, err := Lex("a @ b"); err == nil {
		t.Error("expected error for '@'")
	}
}

func TestParseMF(t *testing.T) {
	loop, err := Parse(mfSrc)
	if err != nil {
		t.Fatal(err)
	}
	if loop.KeyVar != "key" || loop.ValVar != "rv" || loop.IterVar != "ratings" {
		t.Fatalf("loop header wrong: %+v", loop)
	}
	if len(loop.Body) != 8 {
		t.Fatalf("body has %d stmts, want 8", len(loop.Body))
	}
	// Round trip through String and Parse again.
	loop2, err := Parse(loop.String())
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, loop.String())
	}
	if loop2.String() != loop.String() {
		t.Fatalf("print/parse not stable:\n%s\nvs\n%s", loop.String(), loop2.String())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"for key in\nend",
		"for (key) in a\nend",
		"for key in a\nx = \nend",
		"for key in a\nif x\nend", // missing end for the loop
		"x = 1",
		"for key in a\n1 = x\nend",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	loop, err := Parse("for k in a\nx = 1 + 2 * 3 ^ 2\nend")
	if err != nil {
		t.Fatal(err)
	}
	got := loop.Body[0].(*Assign).Value.String()
	if got != "(1 + (2 * (3 ^ 2)))" {
		t.Fatalf("precedence wrong: %s", got)
	}
}

func TestParseElseif(t *testing.T) {
	src := `
for k in a
    if x > 1
        y = 1
    elseif x > 0
        y = 2
    else
        y = 3
    end
end
`
	loop, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ifst, ok := loop.Body[0].(*If)
	if !ok || len(ifst.Else) != 1 {
		t.Fatalf("elseif desugaring broken: %s", loop)
	}
	if _, ok := ifst.Else[0].(*If); !ok {
		t.Fatalf("elseif should nest an if: %s", loop)
	}
}

func TestAnalyzeMFMatchesFig6(t *testing.T) {
	loop, err := Parse(mfSrc)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Analyze(loop, mfEnv())
	if err != nil {
		t.Fatal(err)
	}
	if spec.IterSpaceArray != "ratings" || spec.Dims[0] != 6 || spec.Dims[1] != 5 {
		t.Fatalf("iteration space wrong: %v", spec)
	}
	// Fig. 6 loop information: reads W[:,key[1]], H[:,key[2]]; writes
	// the same; inherited step_size.
	var reads, writes int
	for _, r := range spec.Refs {
		if r.IsWrite {
			writes++
		} else {
			reads++
		}
	}
	if reads != 2 || writes != 2 {
		t.Fatalf("refs = %v", spec.Refs)
	}
	if len(spec.Inherited) != 1 || spec.Inherited[0] != "step_size" {
		t.Fatalf("inherited = %v", spec.Inherited)
	}
	// Dependence vectors (0,inf),(inf,0) → 2D parallelizable.
	deps, err := dep.Analyze(spec)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sched.NewFromDeps(spec, deps, sched.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kind != sched.TwoD {
		t.Fatalf("plan = %v, want 2D (deps %v)", plan.Kind, deps)
	}
}

func TestAnalyzeSubscriptForms(t *testing.T) {
	src := `
for (key, v) in grid
    a = A[key[1] + 1, 3]
    B[key[2] - 2, 1:4] = a
    c = C[key[1], key[2]]
    D[5, :] = c + a
end
`
	env := &Env{Arrays: map[string][]int64{
		"grid": {8, 8}, "A": {10, 10}, "B": {10, 10}, "C": {8, 8}, "D": {10, 10},
	}}
	loop, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Analyze(loop, env)
	if err != nil {
		t.Fatal(err)
	}
	find := func(array string) ir.ArrayRef {
		for _, r := range spec.Refs {
			if r.Array == array {
				return r
			}
		}
		t.Fatalf("no ref to %s", array)
		return ir.ArrayRef{}
	}
	a := find("A")
	if a.Subs[0].Kind != ir.SubIndex || a.Subs[0].Dim != 0 || a.Subs[0].Const != 1 {
		t.Fatalf("A sub0 = %v", a.Subs[0])
	}
	if a.Subs[1].Kind != ir.SubConst || a.Subs[1].Const != 2 { // 1-based 3 → 0-based 2
		t.Fatalf("A sub1 = %v", a.Subs[1])
	}
	b := find("B")
	if b.Subs[0].Kind != ir.SubIndex || b.Subs[0].Dim != 1 || b.Subs[0].Const != -2 {
		t.Fatalf("B sub0 = %v", b.Subs[0])
	}
	if b.Subs[1].Kind != ir.SubRange || b.Subs[1].Lo != 0 || b.Subs[1].Hi != 3 {
		t.Fatalf("B sub1 = %v", b.Subs[1])
	}
	d := find("D")
	if d.Subs[1].Kind != ir.SubRange || !d.Subs[1].Full {
		t.Fatalf("D sub1 = %v", d.Subs[1])
	}
}

func TestAnalyzeRuntimeSubscript(t *testing.T) {
	src := `
for (key, v) in samples
    idx = floor(v * 10) + 1
    w = weights[idx]
    weights[idx] = w - 0.1
end
`
	env := &Env{Arrays: map[string][]int64{"samples": {100}, "weights": {10}}}
	loop, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Analyze(loop, env)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range spec.Refs {
		if r.Array == "weights" && r.Subs[0].Kind != ir.SubRuntime {
			t.Fatalf("weights subscript should be runtime: %v", r)
		}
	}
}

func TestAnalyzeBufferedWrites(t *testing.T) {
	src := `
for (key, v) in samples
    idx = floor(v * 10) + 1
    g = v - 1
    w_buf[idx] += g
end
`
	env := &Env{
		Arrays:  map[string][]int64{"samples": {100}, "weights": {10}},
		Buffers: map[string]string{"w_buf": "weights"},
	}
	loop, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Analyze(loop, env)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range spec.Refs {
		if r.Array == "weights" && r.IsWrite {
			if !r.Buffered {
				t.Fatalf("buffer write not marked buffered: %v", r)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("buffered write ref missing")
	}
	deps, err := dep.Analyze(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !deps.Empty() {
		t.Fatalf("buffered-only writes should leave no dependences: %v", deps)
	}
}

func TestAnalyzeAccumulatorInherited(t *testing.T) {
	src := `
for (key, rv) in ratings
    pred = dot(W[:, key[1]], H[:, key[2]])
    err += abs2(rv - pred)
end
`
	loop, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Analyze(loop, mfEnv())
	if err != nil {
		t.Fatal(err)
	}
	has := false
	for _, v := range spec.Inherited {
		if v == "err" {
			has = true
		}
	}
	if !has {
		t.Fatalf("accumulator err should be inherited: %v", spec.Inherited)
	}
}

func TestInterpMFMatchesHandComputation(t *testing.T) {
	loop, err := Parse(mfSrc)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine()
	ratings := dsm.NewSparse("ratings", 6, 5)
	ratings.SetAt(2.0, 1, 2) // one observed entry at (1,2), value 2
	w := dsm.NewDense("W", 3, 6)
	h := dsm.NewDense("H", 3, 5)
	// W[:,1] = (1, 0, 1); H[:,2] = (0.5, 0.5, 0.5)
	w.Vec(1)[0], w.Vec(1)[2] = 1, 1
	h.Vec(2)[0], h.Vec(2)[1], h.Vec(2)[2] = 0.5, 0.5, 0.5
	m.Arrays["ratings"] = ratings
	m.Arrays["W"] = w
	m.Arrays["H"] = h
	m.Globals["step_size"] = float64(0.1)
	if err := m.RunLoop(loop); err != nil {
		t.Fatal(err)
	}
	// pred = 1*0.5 + 0 + 1*0.5 = 1; diff = 2 - 1 = 1.
	// New W[:,1] = old + 0.1*2*1*H_row = (1.1, 0.1, 1.1)
	// New H[:,2] = old + 0.1*2*1*W_row_old = (0.7, 0.5, 0.7)
	wantW := []float64{1.1, 0.1, 1.1}
	wantH := []float64{0.7, 0.5, 0.7}
	for i := 0; i < 3; i++ {
		if math.Abs(w.Vec(1)[i]-wantW[i]) > 1e-12 {
			t.Fatalf("W[:,1] = %v, want %v", w.Vec(1), wantW)
		}
		if math.Abs(h.Vec(2)[i]-wantH[i]) > 1e-12 {
			t.Fatalf("H[:,2] = %v, want %v", h.Vec(2), wantH)
		}
	}
}

func TestInterpAccumulator(t *testing.T) {
	src := `
for (key, v) in xs
    err += v * v
end
`
	loop, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine()
	xs := dsm.NewSparse("xs", 5)
	xs.SetAt(2, 0)
	xs.SetAt(3, 4)
	m.Arrays["xs"] = xs
	m.Globals["err"] = float64(0)
	if err := m.RunLoop(loop); err != nil {
		t.Fatal(err)
	}
	if got := m.Globals["err"].(float64); got != 13 {
		t.Fatalf("err = %v, want 13", got)
	}
}

func TestInterpIfElse(t *testing.T) {
	src := `
for (key, v) in xs
    if v > 1
        big += 1
    else
        small += 1
    end
end
`
	loop, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine()
	xs := dsm.NewSparse("xs", 4)
	xs.SetAt(0.5, 0)
	xs.SetAt(2, 1)
	xs.SetAt(3, 2)
	m.Arrays["xs"] = xs
	m.Globals["big"] = float64(0)
	m.Globals["small"] = float64(0)
	if err := m.RunLoop(loop); err != nil {
		t.Fatal(err)
	}
	if m.Globals["big"].(float64) != 2 || m.Globals["small"].(float64) != 1 {
		t.Fatalf("big=%v small=%v", m.Globals["big"], m.Globals["small"])
	}
}

func TestInterpBufferWrites(t *testing.T) {
	src := `
for (key, v) in xs
    wbuf[key[1]] += v
end
`
	loop, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine()
	xs := dsm.NewSparse("xs", 4)
	xs.SetAt(1.5, 2)
	weights := dsm.NewDense("weights", 4)
	buf := dsm.NewBuffer(weights, nil)
	m.Arrays["xs"] = xs
	m.Arrays["weights"] = weights
	m.Buffers["wbuf"] = buf
	if err := m.RunLoop(loop); err != nil {
		t.Fatal(err)
	}
	if weights.At(2) != 0 {
		t.Fatal("buffered write applied too early")
	}
	buf.Flush(weights)
	if weights.At(2) != 1.5 {
		t.Fatalf("weights[2] = %v after flush", weights.At(2))
	}
}

func TestInterpErrors(t *testing.T) {
	cases := []string{
		"for k in xs\ny = nope\nend",             // undefined var
		"for k in xs\ny = unknown(1)\nend",       // unknown function
		"for k in xs\ny = A[1]\nend",             // unknown array
		"for k in xs\ny += 1\nend",               // compound on undefined
		"for k in xs\ny = dot(1, 2)\nend",        // bad builtin args
		"for k in xs\nif 1 + 1\ny = 1\nend\nend", // non-bool condition
	}
	for _, src := range cases {
		loop, err := Parse(src)
		if err != nil {
			t.Fatalf("parse error for %q: %v", src, err)
		}
		m := NewMachine()
		xs := dsm.NewSparse("xs", 3)
		xs.SetAt(1, 0)
		m.Arrays["xs"] = xs
		if err := m.RunLoop(loop); err == nil {
			t.Errorf("expected runtime error for %q", src)
		}
	}
}

func TestPrefetchSliceSLR(t *testing.T) {
	// The Section 4.4/6.3 scenario: subscripts computed from the data
	// record (prefetchable) and a read whose subscript depends on a
	// DistArray value (skipped).
	src := `
for (key, v) in samples
    idx = floor(v * 10) + 1
    scale = 2 * v
    w = weights[idx]
    other = weights[w * 3 + 1]
    unrelated = 12345
    g = w * scale
    wbuf[idx] += g
end
`
	env := &Env{
		Arrays:  map[string][]int64{"samples": {100}, "weights": {50}},
		Buffers: map[string]string{"wbuf": "weights"},
	}
	loop, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sliced, skipped, err := PrefetchSlice(loop, env, "weights")
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 1 || !strings.Contains(skipped[0], "weights") {
		t.Fatalf("skipped = %v, want the data-dependent read", skipped)
	}
	text := sliced.String()
	if !strings.Contains(text, "__record(weights[idx])") {
		t.Fatalf("slice missing record call:\n%s", text)
	}
	if !strings.Contains(text, "idx =") {
		t.Fatalf("slice must keep the idx definition:\n%s", text)
	}
	if strings.Contains(text, "unrelated") || strings.Contains(text, "g =") || strings.Contains(text, "scale") {
		t.Fatalf("slice kept dead statements:\n%s", text)
	}

	// Run the slice in record mode and check indices.
	m := NewMachine()
	samples := dsm.NewSparse("samples", 100)
	samples.SetAt(0.25, 7) // idx = floor(2.5)+1 = 3 (1-based) → offset 2
	samples.SetAt(0.83, 9) // idx = floor(8.3)+1 = 9 → offset 8
	weights := dsm.NewDense("weights", 50)
	m.Arrays["samples"] = samples
	m.Arrays["weights"] = weights
	m.Recorder = NewRecorder("weights")
	if err := m.RunLoop(sliced); err != nil {
		t.Fatal(err)
	}
	got := m.Recorder.Indices["weights"]
	if len(got) != 2 || got[0] != 2 || got[1] != 8 {
		t.Fatalf("recorded indices = %v, want [2 8]", got)
	}
}

func TestPrefetchSliceControlDependence(t *testing.T) {
	src := `
for (key, v) in samples
    idx = floor(v * 10) + 1
    if v > 0.5
        w = weights[idx]
        sum += w
    end
end
`
	env := &Env{Arrays: map[string][]int64{"samples": {100}, "weights": {50}}}
	loop, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sliced, skipped, err := PrefetchSlice(loop, env, "weights")
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("nothing should be skipped: %v", skipped)
	}
	text := sliced.String()
	if !strings.Contains(text, "if (v > 0.5)") {
		t.Fatalf("slice must keep the guard:\n%s", text)
	}
	m := NewMachine()
	samples := dsm.NewSparse("samples", 100)
	samples.SetAt(0.25, 1) // guard false: no record
	samples.SetAt(0.83, 2) // guard true: record offset 8
	m.Arrays["samples"] = samples
	m.Arrays["weights"] = dsm.NewDense("weights", 50)
	m.Recorder = NewRecorder("weights")
	if err := m.RunLoop(sliced); err != nil {
		t.Fatal(err)
	}
	got := m.Recorder.Indices["weights"]
	if len(got) != 1 || got[0] != 8 {
		t.Fatalf("recorded = %v, want [8]", got)
	}
}

func TestPrefetchSliceRangeRead(t *testing.T) {
	// Full-range reads record every element of the vector.
	src := `
for (key, rv) in ratings
    W_row = W[:, key[1]]
    pred = dot(W_row, W_row)
end
`
	env := mfEnv()
	loop, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sliced, _, err := PrefetchSlice(loop, env, "W")
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine()
	ratings := dsm.NewSparse("ratings", 6, 5)
	ratings.SetAt(1, 2, 3)
	m.Arrays["ratings"] = ratings
	m.Arrays["W"] = dsm.NewDense("W", 3, 6)
	m.Recorder = NewRecorder("W")
	if err := m.RunLoop(sliced); err != nil {
		t.Fatal(err)
	}
	got := m.Recorder.Indices["W"]
	// W[:,2] in 0-based coords = offsets 2*3 + {0,1,2}.
	if len(got) != 3 || got[0] != 6 || got[2] != 8 {
		t.Fatalf("recorded = %v, want [6 7 8]", got)
	}
}

func TestAnalyzerRejectsBadPrograms(t *testing.T) {
	env := mfEnv()
	cases := []string{
		"for (key, rv) in nowhere\nx = 1\nend",            // unknown iter space
		"for (key, rv) in ratings\nx = mystery[1]\nend",   // unknown subscripted name
		"for (key, rv) in ratings\nmystery[1] = 1\nend",   // unknown write target
		"for (key, rv) in ratings\nx = unknownfn(1)\nend", // unknown function
	}
	for _, src := range cases {
		loop, err := Parse(src)
		if err != nil {
			t.Fatalf("parse of %q: %v", src, err)
		}
		if _, err := Analyze(loop, env); err == nil {
			t.Errorf("expected analysis error for %q", src)
		}
	}
}

func TestForRangeParseAndInterp(t *testing.T) {
	src := `
for (key, v) in xs
    acc = 0
    for k = 1:4
        acc = acc + k * v
    end
    total += acc
end
`
	loop, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// Reparse round trip.
	if _, err := Parse(loop.String()); err != nil {
		t.Fatalf("reparse: %v\n%s", err, loop.String())
	}
	m := NewMachine()
	xs := dsm.NewSparse("xs", 3)
	xs.SetAt(2, 0)
	m.Arrays["xs"] = xs
	m.Globals["total"] = float64(0)
	if err := m.RunLoop(loop); err != nil {
		t.Fatal(err)
	}
	// acc = (1+2+3+4)*2 = 20
	if got := m.Globals["total"].(float64); got != 20 {
		t.Fatalf("total = %v, want 20", got)
	}
}

func TestForRangeInnerVarSubscriptIsRuntime(t *testing.T) {
	src := `
for (key, v) in xs
    for k = 1:3
        A[k] = A[k] + v
    end
end
`
	env := &Env{Arrays: map[string][]int64{"xs": {8}, "A": {3}}}
	loop, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Analyze(loop, env)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range spec.Refs {
		if r.Array == "A" && r.Subs[0].Kind != ir.SubRuntime {
			t.Fatalf("inner-loop-var subscript should be conservative runtime: %v", r)
		}
	}
	// Conservative runtime subscripts with unbuffered writes: the loop
	// must not be parallelizable without buffers.
	deps, err := dep.Analyze(spec)
	if err != nil {
		t.Fatal(err)
	}
	if deps.Empty() {
		t.Fatal("inner-var writes must produce conservative dependences")
	}
}

func TestForRangeAccumulatorDetected(t *testing.T) {
	src := `
for (key, v) in xs
    for k = 1:2
        hits += 1
    end
end
`
	loop, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	accs := Accumulators(loop)
	if len(accs) != 1 || accs[0] != "hits" {
		t.Fatalf("Accumulators = %v", accs)
	}
}

func TestForRangePrefetchSlice(t *testing.T) {
	// The subscript-feeding statement sits inside an inner loop: the
	// slice must keep the loop with only the needed statements.
	src := `
for (key, v) in samples
    base = floor(v * 10)
    for k = 1:2
        idx = base + k
        w = weights[idx]
        junk = w * 2
    end
end
`
	env := &Env{Arrays: map[string][]int64{"samples": {50}, "weights": {20}}}
	loop, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sliced, skipped, err := PrefetchSlice(loop, env, "weights")
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("skipped = %v", skipped)
	}
	text := sliced.String()
	if !strings.Contains(text, "for k = 1:2") {
		t.Fatalf("slice must keep the inner loop:\n%s", text)
	}
	if strings.Contains(text, "junk") {
		t.Fatalf("slice kept dead code:\n%s", text)
	}
	m := NewMachine()
	samples := dsm.NewSparse("samples", 50)
	samples.SetAt(0.52, 3) // base = 5; idx = 6, 7 → offsets 5, 6
	m.Arrays["samples"] = samples
	m.Arrays["weights"] = dsm.NewDense("weights", 20)
	m.Recorder = NewRecorder("weights")
	if err := m.RunLoop(sliced); err != nil {
		t.Fatal(err)
	}
	got := m.Recorder.Indices["weights"]
	if len(got) != 2 || got[0] != 5 || got[1] != 6 {
		t.Fatalf("recorded = %v, want [5 6]", got)
	}
}

func TestForRangeTaintPropagation(t *testing.T) {
	// A variable fed from an array read inside an inner loop must taint
	// subscripts that depend on it — the dependent ref is skipped.
	src := `
for (key, v) in samples
    x = 0
    for k = 1:2
        x = x + weights[1]
    end
    w = weights[x + 1]
end
`
	env := &Env{Arrays: map[string][]int64{"samples": {10}, "weights": {20}}}
	loop, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, skipped, err := PrefetchSlice(loop, env, "weights")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range skipped {
		if strings.Contains(s, "x") {
			found = true
		}
	}
	if !found {
		t.Fatalf("data-dependent ref should be skipped, got skipped=%v", skipped)
	}
}

func TestRandBuiltin(t *testing.T) {
	src := `
for (key, v) in xs
    total += rand()
end
`
	loop, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine()
	xs := dsm.NewSparse("xs", 4)
	xs.SetAt(1, 0)
	xs.SetAt(1, 1)
	m.Arrays["xs"] = xs
	m.Globals["total"] = float64(0)
	if err := m.RunLoop(loop); err == nil {
		t.Fatal("rand() without an Rng must error")
	}
	m.Globals["total"] = float64(0)
	m.Rng = rand.New(rand.NewSource(7))
	if err := m.RunLoop(loop); err != nil {
		t.Fatal(err)
	}
	got := m.Globals["total"].(float64)
	if got <= 0 || got >= 2 {
		t.Fatalf("total = %v, want in (0,2)", got)
	}
	// Deterministic with the same seed.
	m2 := NewMachine()
	m2.Arrays["xs"] = xs
	m2.Globals["total"] = float64(0)
	m2.Rng = rand.New(rand.NewSource(7))
	if err := m2.RunLoop(loop); err != nil {
		t.Fatal(err)
	}
	if m2.Globals["total"].(float64) != got {
		t.Fatal("rand() not deterministic under a fixed seed")
	}
}

func TestInterpMoreErrorPaths(t *testing.T) {
	mkMachine := func() *Machine {
		m := NewMachine()
		xs := dsm.NewSparse("xs", 4)
		xs.SetAt(1, 0)
		m.Arrays["xs"] = xs
		m.Arrays["A"] = dsm.NewDense("A", 3, 4)
		weights := dsm.NewDense("weights", 4)
		m.Buffers["wbuf"] = dsm.NewBuffer(weights, nil)
		return m
	}
	cases := []struct {
		name, src string
	}{
		{"buffer plain assign", "for (k, v) in xs\nwbuf[k[1]] = v\nend"},
		{"buffer vector write", "for (k, v) in xs\nwbuf[k[1]] += zeros(2)\nend"},
		{"two range subscripts", "for (k, v) in xs\ny = A[:, :]\nend"},
		{"vector length mismatch", "for (k, v) in xs\nA[:, k[1]] = zeros(2)\nend"},
		{"scalar write of vector", "for (k, v) in xs\nA[1, k[1]] = zeros(3)\nend"},
		{"key arity", "for (k, v) in xs\ny = k[1, 2]\nend"},
		{"key out of range", "for (k, v) in xs\ny = k[9]\nend"},
		{"subscript arity", "for (k, v) in xs\ny = A[k[1]]\nend"},
		{"length of scalar", "for (k, v) in xs\ny = length(v)\nend"},
		{"dot arity", "for (k, v) in xs\ny = dot(zeros(2))\nend"},
		{"vector condition", "for (k, v) in xs\ny = zeros(2) < zeros(2)\nend"},
	}
	for _, c := range cases {
		loop, err := Parse(c.src)
		if err != nil {
			t.Fatalf("%s: parse: %v", c.name, err)
		}
		if err := mkMachine().RunLoop(loop); err == nil {
			t.Errorf("%s: expected a runtime error", c.name)
		}
	}
}

func TestInterpVectorOps(t *testing.T) {
	src := `
for (k, v) in xs
    a = zeros(3)
    a[1] = 1
    a[2] = 2
    a[3] = 3
    b = a * 2 + 1
    c = (0 - 1) * a
    s = dot(b, a) + c[2] + length(a) + min(4, 2) + max(1, 5) + a ^ 2
end
`
	// a^2 on a vector is elementwise; result discarded via s? s is
	// scalar + vector -> vector; just check it runs.
	loop, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine()
	xs := dsm.NewSparse("xs", 2)
	xs.SetAt(1, 0)
	m.Arrays["xs"] = xs
	if err := m.RunLoop(loop); err != nil {
		t.Fatal(err)
	}
}
