package lang

import (
	"fmt"
)

// PrefetchSlice synthesizes the bulk-prefetch function of Section 4.4:
// a reduced loop body that, instead of reading remote DistArrays and
// computing, only evaluates and records the element indices the real
// loop body would read from the target arrays.
//
// The slice keeps exactly the statements the target subscripts have a
// data or control dependence on (in spirit dead code elimination), and
// skips any reference whose subscript depends on values read from
// DistArrays — computing those would itself incur remote accesses, so
// the paper does not record them. Skipped references are returned so
// callers know which reads remain on-demand.
//
// The loop's key and value variables are always available (the
// iteration-space data is local), so subscripts derived from them are
// prefetchable.
func PrefetchSlice(loop *Loop, env *Env, targets ...string) (*Loop, []string, error) {
	targetSet := make(map[string]bool, len(targets))
	for _, t := range targets {
		if _, ok := env.Arrays[t]; !ok {
			return nil, nil, fmt.Errorf("lang: prefetch target %q is not a known DistArray", t)
		}
		targetSet[t] = true
	}

	s := &slicer{loop: loop, env: env, targets: targetSet,
		tainted: map[string]bool{}, needed: map[string]bool{},
		bound: map[string]bool{}}
	s.bound[loop.KeyVar] = true
	if loop.ValVar != "" {
		s.bound[loop.ValVar] = true
	}
	collectBoundVars(loop.Body, s.bound)

	// Pass 1 (forward): taint variables whose definitions read any
	// DistArray, transitively.
	s.taintStmts(loop.Body)

	// Pass 2: find recordable references and seed the needed-variable
	// set with their subscript variables. Control conditions guarding a
	// recordable ref are needed too (handled in pass 3's fixpoint).
	s.collectRefs(loop.Body)

	// Pass 3 (fixpoint): grow needed with the free variables of every
	// statement defining a needed variable, plus guarding conditions.
	for changed := true; changed; {
		changed = s.propagate(loop.Body, false)
	}

	// Pass 4: emit the sliced body.
	body := s.emit(loop.Body)
	out := &Loop{KeyVar: loop.KeyVar, ValVar: loop.ValVar, IterVar: loop.IterVar, Body: body}
	return out, s.skipped, nil
}

type slicer struct {
	loop    *Loop
	env     *Env
	targets map[string]bool
	tainted map[string]bool
	needed  map[string]bool
	// bound holds loop-bound variables (the parallel loop's key/value
	// and inner for-range counters): defined by iteration, never
	// "needed" from outside.
	bound   map[string]bool
	skipped []string
}

// collectBoundVars gathers inner-loop counter names.
func collectBoundVars(body []Stmt, set map[string]bool) {
	for _, st := range body {
		switch x := st.(type) {
		case *If:
			collectBoundVars(x.Then, set)
			collectBoundVars(x.Else, set)
		case *ForRange:
			set[x.Var] = true
			collectBoundVars(x.Body, set)
		}
	}
}

// exprReadsArray reports whether evaluating e reads any DistArray (not
// the key tuple) or uses a tainted variable.
func (s *slicer) exprTainted(e Expr) bool {
	switch x := e.(type) {
	case *Num, *Bool, nil:
		return false
	case *Ident:
		return s.tainted[x.Name]
	case *UnOp:
		return s.exprTainted(x.X)
	case *BinOp:
		return s.exprTainted(x.L) || s.exprTainted(x.R)
	case *RangeExpr:
		if x.Full {
			return false
		}
		return s.exprTainted(x.Lo) || s.exprTainted(x.Hi)
	case *Call:
		for _, a := range x.Args {
			if s.exprTainted(a) {
				return true
			}
		}
		return false
	case *Index:
		if x.Base == s.loop.KeyVar {
			return false
		}
		if _, isArr := s.env.Arrays[x.Base]; isArr {
			return true // reads a DistArray
		}
		// Local vector variable subscripting.
		if s.tainted[x.Base] {
			return true
		}
		for _, sub := range x.Subs {
			if s.exprTainted(sub) {
				return true
			}
		}
		return false
	default:
		return true
	}
}

func (s *slicer) taintStmts(body []Stmt) {
	for _, st := range body {
		switch x := st.(type) {
		case *Assign:
			if id, ok := x.Target.(*Ident); ok {
				if s.exprTainted(x.Value) || (x.Op != "=" && s.tainted[id.Name]) {
					s.tainted[id.Name] = true
				}
			}
		case *If:
			// Conservative: values assigned under a tainted condition
			// are tainted (control dependence on array data).
			condTainted := s.exprTainted(x.Cond)
			if condTainted {
				markAssigned(x.Then, s.tainted)
				markAssigned(x.Else, s.tainted)
			} else {
				s.taintStmts(x.Then)
				s.taintStmts(x.Else)
			}
		case *ForRange:
			if s.exprTainted(x.Lo) || s.exprTainted(x.Hi) {
				markAssigned(x.Body, s.tainted)
			} else {
				// Run to a fixpoint: a loop body may feed a variable
				// back into itself across iterations.
				before := -1
				for before != len(s.tainted) {
					before = len(s.tainted)
					s.taintStmts(x.Body)
				}
			}
		}
	}
}

func markAssigned(body []Stmt, set map[string]bool) {
	for _, st := range body {
		switch x := st.(type) {
		case *Assign:
			if id, ok := x.Target.(*Ident); ok {
				set[id.Name] = true
			}
		case *If:
			markAssigned(x.Then, set)
			markAssigned(x.Else, set)
		case *ForRange:
			markAssigned(x.Body, set)
		}
	}
}

// collectRefs finds reads of target arrays and seeds needed vars.
func (s *slicer) collectRefs(body []Stmt) {
	var visitExpr func(e Expr)
	visitExpr = func(e Expr) {
		switch x := e.(type) {
		case *UnOp:
			visitExpr(x.X)
		case *BinOp:
			visitExpr(x.L)
			visitExpr(x.R)
		case *Call:
			for _, a := range x.Args {
				visitExpr(a)
			}
		case *RangeExpr:
			if !x.Full {
				visitExpr(x.Lo)
				visitExpr(x.Hi)
			}
		case *Index:
			for _, sub := range x.Subs {
				visitExpr(sub)
			}
			if s.targets[x.Base] {
				subsTainted := false
				for _, sub := range x.Subs {
					if s.exprTainted(sub) {
						subsTainted = true
						break
					}
				}
				if subsTainted {
					s.skipped = append(s.skipped, x.String())
					return
				}
				for _, sub := range x.Subs {
					s.addFreeVars(sub)
				}
			}
		}
	}
	var visitStmt func(st Stmt)
	visitStmt = func(st Stmt) {
		switch x := st.(type) {
		case *Assign:
			visitExpr(x.Value)
			if idx, ok := x.Target.(*Index); ok {
				// Subscripts of writes to target arrays are the same
				// addresses; buffered writes need no prefetch but
				// reads of the same element do — record read targets
				// only (writes are pushed, not pulled).
				for _, sub := range idx.Subs {
					visitExpr(sub)
				}
			}
		case *If:
			visitExpr(x.Cond)
			for _, t := range x.Then {
				visitStmt(t)
			}
			for _, t := range x.Else {
				visitStmt(t)
			}
		case *ForRange:
			visitExpr(x.Lo)
			visitExpr(x.Hi)
			for _, t := range x.Body {
				visitStmt(t)
			}
		case *ExprStmt:
			visitExpr(x.X)
		}
	}
	for _, st := range body {
		visitStmt(st)
	}
}

func (s *slicer) addFreeVars(e Expr) {
	switch x := e.(type) {
	case *Ident:
		if !s.bound[x.Name] {
			s.needed[x.Name] = true
		}
	case *UnOp:
		s.addFreeVars(x.X)
	case *BinOp:
		s.addFreeVars(x.L)
		s.addFreeVars(x.R)
	case *Call:
		for _, a := range x.Args {
			s.addFreeVars(a)
		}
	case *RangeExpr:
		if !x.Full {
			s.addFreeVars(x.Lo)
			s.addFreeVars(x.Hi)
		}
	case *Index:
		if !s.bound[x.Base] {
			if _, isArr := s.env.Arrays[x.Base]; !isArr {
				s.needed[x.Base] = true
			}
		}
		for _, sub := range x.Subs {
			s.addFreeVars(sub)
		}
	}
}

// propagate grows the needed set; returns whether anything changed.
// guarded marks that the statements are control-dependent on a needed
// region (their conditions count).
func (s *slicer) propagate(body []Stmt, guarded bool) bool {
	changed := false
	for _, st := range body {
		switch x := st.(type) {
		case *Assign:
			if id, ok := x.Target.(*Ident); ok && s.needed[id.Name] {
				before := len(s.needed)
				s.addFreeVars(x.Value)
				if len(s.needed) != before {
					changed = true
				}
			}
		case *If:
			inner := s.propagate(x.Then, guarded) || s.propagate(x.Else, guarded)
			if inner || s.branchKept(x.Then, x.Else) {
				before := len(s.needed)
				s.addFreeVars(x.Cond)
				if len(s.needed) != before {
					changed = true
				}
			}
			changed = changed || inner
		case *ForRange:
			inner := s.propagate(x.Body, guarded)
			if inner || s.branchKept(x.Body) {
				before := len(s.needed)
				s.addFreeVars(x.Lo)
				s.addFreeVars(x.Hi)
				if len(s.needed) != before {
					changed = true
				}
			}
			changed = changed || inner
		}
	}
	return changed
}

// branchKept reports whether a guarded subtree contains a kept
// statement or a record point.
func (s *slicer) branchKept(bodies ...[]Stmt) bool {
	kept := false
	var walk func(body []Stmt)
	walk = func(body []Stmt) {
		for _, st := range body {
			switch y := st.(type) {
			case *Assign:
				if id, ok := y.Target.(*Ident); ok && s.needed[id.Name] {
					kept = true
				}
				if s.hasRecordableRef(y) {
					kept = true
				}
			case *If:
				walk(y.Then)
				walk(y.Else)
			case *ForRange:
				walk(y.Body)
			}
		}
	}
	for _, b := range bodies {
		walk(b)
	}
	return kept
}

func (s *slicer) hasRecordableRef(st Stmt) bool {
	found := false
	var visitExpr func(e Expr)
	visitExpr = func(e Expr) {
		switch x := e.(type) {
		case *UnOp:
			visitExpr(x.X)
		case *BinOp:
			visitExpr(x.L)
			visitExpr(x.R)
		case *Call:
			for _, a := range x.Args {
				visitExpr(a)
			}
		case *Index:
			if s.targets[x.Base] && !s.refSkipped(x) {
				found = true
			}
			for _, sub := range x.Subs {
				visitExpr(sub)
			}
		}
	}
	switch y := st.(type) {
	case *Assign:
		visitExpr(y.Value)
		if idx, ok := y.Target.(*Index); ok {
			for _, sub := range idx.Subs {
				visitExpr(sub)
			}
		}
	case *ExprStmt:
		visitExpr(y.X)
	}
	return found
}

func (s *slicer) refSkipped(x *Index) bool {
	for _, sub := range x.Subs {
		if s.exprTainted(sub) {
			return true
		}
	}
	return false
}

// emit builds the sliced body: kept definitions plus __record calls at
// the positions of recordable references.
func (s *slicer) emit(body []Stmt) []Stmt {
	var out []Stmt
	for _, st := range body {
		switch x := st.(type) {
		case *Assign:
			// Record refs appearing in this statement first (reads
			// happen while evaluating the statement).
			out = append(out, s.recordsIn(x)...)
			if id, ok := x.Target.(*Ident); ok && s.needed[id.Name] {
				out = append(out, x)
			}
		case *If:
			thenB := s.emit(x.Then)
			elseB := s.emit(x.Else)
			if len(thenB) > 0 || len(elseB) > 0 {
				out = append(out, &If{Cond: x.Cond, Then: thenB, Else: elseB})
			}
		case *ForRange:
			body := s.emit(x.Body)
			if len(body) > 0 {
				out = append(out, &ForRange{Var: x.Var, Lo: x.Lo, Hi: x.Hi, Body: body})
			}
		case *ExprStmt:
			out = append(out, s.recordsIn(x)...)
		}
	}
	return out
}

// recordsIn returns __record statements for every recordable target
// reference inside st.
func (s *slicer) recordsIn(st Stmt) []Stmt {
	var out []Stmt
	seen := map[string]bool{}
	var visitExpr func(e Expr)
	visitExpr = func(e Expr) {
		switch x := e.(type) {
		case *UnOp:
			visitExpr(x.X)
		case *BinOp:
			visitExpr(x.L)
			visitExpr(x.R)
		case *Call:
			for _, a := range x.Args {
				visitExpr(a)
			}
		case *RangeExpr:
			if !x.Full {
				visitExpr(x.Lo)
				visitExpr(x.Hi)
			}
		case *Index:
			for _, sub := range x.Subs {
				visitExpr(sub)
			}
			if s.targets[x.Base] && !s.refSkipped(x) && !seen[x.String()] {
				seen[x.String()] = true
				out = append(out, &ExprStmt{X: &Call{Fn: "__record", Args: []Expr{x}}})
			}
		}
	}
	switch y := st.(type) {
	case *Assign:
		visitExpr(y.Value)
		if idx, ok := y.Target.(*Index); ok {
			for _, sub := range idx.Subs {
				visitExpr(sub)
			}
		}
	case *ExprStmt:
		visitExpr(y.X)
	}
	return out
}
