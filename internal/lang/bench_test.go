package lang

import (
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"testing"

	"orion/internal/dsm"
)

const benchSrc = `
for (key, rv) in ratings
    W_row = W[:, key[1]]
    H_row = H[:, key[2]]
    pred = dot(W_row, H_row)
    diff = rv - pred
    W_grad = -2 * diff * H_row
    H_grad = -2 * diff * W_row
    W[:, key[1]] = W_row - step_size * W_grad
    H[:, key[2]] = H_row - step_size * H_grad
end
`

func BenchmarkParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchSrc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyze(b *testing.B) {
	loop, err := Parse(benchSrc)
	if err != nil {
		b.Fatal(err)
	}
	env := &Env{Arrays: map[string][]int64{
		"ratings": {1000, 800}, "W": {32, 1000}, "H": {32, 800},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(loop, env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpretIteration measures one interpreted MF SGD step —
// the per-iteration overhead the DSL execution path pays over a native
// Go kernel.
func BenchmarkInterpretIteration(b *testing.B) {
	loop, err := Parse(benchSrc)
	if err != nil {
		b.Fatal(err)
	}
	m := NewMachine()
	m.Arrays["ratings"] = dsm.NewSparse("ratings", 100, 100)
	w := dsm.NewDense("W", 16, 100)
	h := dsm.NewDense("H", 16, 100)
	m.Arrays["W"] = w
	m.Arrays["H"] = h
	m.Globals["step_size"] = float64(0.01)
	key := []int64{3, 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.RunIteration(loop, key, 1.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrefetchSliceSynthesis(b *testing.B) {
	src := `
for (key, v) in samples
    idx = floor(v * 100) + 1
    w = weights[idx]
    g = sigmoid(w) - 1
    w_buf[idx] += 0 - g
end
`
	loop, err := Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	env := &Env{
		Arrays:  map[string][]int64{"samples": {1000}, "weights": {100}},
		Buffers: map[string]string{"w_buf": "weights"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := PrefetchSlice(loop, env, "weights"); err != nil {
			b.Fatal(err)
		}
	}
}

// The LDA Gibbs and SLR bodies (same sources as the shipped examples),
// benchmarked interp-vs-compiled alongside MF below.
const benchLDASrc = `
for (key, occ) in tokens
    zi = z[key[1], key[2]]
    doc_topic[zi, key[1]] -= 1
    word_topic[zi, key[2]] -= 1
    tot_buf[zi] -= 1

    p = zeros(K)
    total = 0
    for k = 1:K
        nd = max(doc_topic[k, key[1]], 0)
        nw = max(word_topic[k, key[2]], 0)
        nt = max(totals[k], 1)
        p[k] = (nd + alpha) * (nw + beta) / (nt + vbeta)
        total = total + p[k]
    end

    u = rand() * total
    chosen = 0
    acc = 0
    for k = 1:K
        acc = acc + p[k]
        if chosen == 0
            if u <= acc
                chosen = k
            end
        end
    end
    if chosen == 0
        chosen = K
    end

    doc_topic[chosen, key[1]] += 1
    word_topic[chosen, key[2]] += 1
    tot_buf[chosen] += 1
    z[key[1], key[2]] = chosen
end
`

const benchSLRSrc = `
for (key, v) in samples
    idx = floor(v * 100) + 1
    w = weights[idx]
    margin = w * v
    g = sigmoid(margin) - 1
    w_buf[idx] += 0 - step_size * g
end
`

// kernelBench describes one loop body benchmarked on both backends.
type kernelBench struct {
	name    string
	src     string
	arrays  map[string][]int64
	buffers map[string]string
	globals map[string]float64
	key     []int64
	val     float64
}

func kernelBenches() []kernelBench {
	return []kernelBench{
		{
			name: "MF", src: benchSrc,
			arrays:  map[string][]int64{"ratings": {100, 100}, "W": {16, 100}, "H": {16, 100}},
			globals: map[string]float64{"step_size": 0.01},
			key:     []int64{3, 7}, val: 1.5,
		},
		{
			name: "LDA", src: benchLDASrc,
			arrays: map[string][]int64{
				"tokens": {120, 80}, "z": {120, 80},
				"doc_topic": {6, 120}, "word_topic": {6, 80}, "totals": {6},
			},
			buffers: map[string]string{"tot_buf": "totals"},
			globals: map[string]float64{"K": 6, "alpha": 0.5, "beta": 0.1, "vbeta": 8},
			key:     []int64{3, 7}, val: 1,
		},
		{
			name: "SLR", src: benchSLRSrc,
			arrays:  map[string][]int64{"samples": {1000}, "weights": {128}},
			buffers: map[string]string{"w_buf": "weights"},
			globals: map[string]float64{"step_size": 0.05},
			key:     []int64{5}, val: 0.73,
		},
	}
}

// benchArrays builds dense arrays filled with small positive integers —
// valid 1-based topic assignments for LDA and benign values elsewhere.
func (kb kernelBench) benchArrays() map[string]*dsm.DistArray {
	rng := rand.New(rand.NewSource(17))
	out := map[string]*dsm.DistArray{}
	for name, dims := range kb.arrays {
		a := dsm.NewDense(name, dims...)
		a.Map(func(float64) float64 { return float64(1 + rng.Intn(6)) })
		out[name] = a
	}
	return out
}

func (kb kernelBench) newMachine(b testing.TB) (*Machine, *Loop) {
	loop, err := Parse(kb.src)
	if err != nil {
		b.Fatal(err)
	}
	m := NewMachine()
	arrays := kb.benchArrays()
	for n, a := range arrays {
		m.Arrays[n] = a
	}
	for n, target := range kb.buffers {
		m.Buffers[n] = dsm.NewBuffer(arrays[target], nil)
	}
	for n, v := range kb.globals {
		m.Globals[n] = v
	}
	m.Rng = rand.New(rand.NewSource(99))
	return m, loop
}

func (kb kernelBench) newKernel(b testing.TB) *CompiledKernel {
	loop, err := Parse(kb.src)
	if err != nil {
		b.Fatal(err)
	}
	names := make([]string, 0, len(kb.globals))
	for n := range kb.globals {
		names = append(names, n)
	}
	cl, err := CompileLoop(loop, &CompileEnv{Arrays: kb.arrays, Buffers: kb.buffers, Globals: names})
	if err != nil {
		b.Fatalf("CompileLoop(%s): %v", kb.name, err)
	}
	k := cl.NewKernel()
	arrays := kb.benchArrays()
	for n, a := range arrays {
		if err := k.BindArray(n, a); err != nil {
			b.Fatal(err)
		}
	}
	for n, target := range kb.buffers {
		if err := k.BindBuffer(n, dsm.NewBuffer(arrays[target], nil)); err != nil {
			b.Fatal(err)
		}
	}
	for n, v := range kb.globals {
		k.SetGlobal(n, v)
	}
	k.SetRng(rand.New(rand.NewSource(99)))
	return k
}

func (kb kernelBench) benchInterp(b *testing.B) {
	m, loop := kb.newMachine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.RunIteration(loop, kb.key, kb.val); err != nil {
			b.Fatal(err)
		}
	}
}

func (kb kernelBench) benchCompiled(b *testing.B) {
	k := kb.newKernel(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := k.RunIteration(kb.key, kb.val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelIteration: one loop-body iteration per op, each body
// on both backends. The compiled/interp ratio is the speedup recorded
// in BENCH_kernels.json (TestWriteBenchBaseline).
func BenchmarkKernelIteration(b *testing.B) {
	for _, kb := range kernelBenches() {
		b.Run(kb.name+"/interp", kb.benchInterp)
		b.Run(kb.name+"/compiled", kb.benchCompiled)
	}
}

// TestWriteBenchBaseline regenerates BENCH_kernels.json at the repo
// root. Gated behind an env var so `go test` stays fast and the
// committed baseline stays stable:
//
//	ORION_BENCH_BASELINE=1 go test ./internal/lang -run TestWriteBenchBaseline
func TestWriteBenchBaseline(t *testing.T) {
	if os.Getenv("ORION_BENCH_BASELINE") == "" {
		t.Skip("set ORION_BENCH_BASELINE=1 to regenerate BENCH_kernels.json")
	}
	type row struct {
		Kernel            string  `json:"kernel"`
		InterpNsPerIter   float64 `json:"interp_ns_per_iter"`
		InterpAllocs      int64   `json:"interp_allocs_per_iter"`
		CompiledNsPerIter float64 `json:"compiled_ns_per_iter"`
		CompiledAllocs    int64   `json:"compiled_allocs_per_iter"`
		Speedup           float64 `json:"speedup"`
	}
	var rows []row
	for _, kb := range kernelBenches() {
		ir := testing.Benchmark(kb.benchInterp)
		cr := testing.Benchmark(kb.benchCompiled)
		ins := float64(ir.T.Nanoseconds()) / float64(ir.N)
		cns := float64(cr.T.Nanoseconds()) / float64(cr.N)
		rows = append(rows, row{
			Kernel:            kb.name,
			InterpNsPerIter:   math.Round(ins*10) / 10,
			InterpAllocs:      ir.AllocsPerOp(),
			CompiledNsPerIter: math.Round(cns*10) / 10,
			CompiledAllocs:    cr.AllocsPerOp(),
			Speedup:           math.Round(ins/cns*100) / 100,
		})
	}
	out, err := json.MarshalIndent(map[string]any{
		"description": "steady-state per-iteration cost of DSL loop bodies: tree-walking interpreter vs closure-compiled backend (internal/lang BenchmarkKernelIteration)",
		"kernels":     rows,
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_kernels.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_kernels.json:\n%s", out)
}
