package lang

import (
	"testing"

	"orion/internal/dsm"
)

const benchSrc = `
for (key, rv) in ratings
    W_row = W[:, key[1]]
    H_row = H[:, key[2]]
    pred = dot(W_row, H_row)
    diff = rv - pred
    W_grad = -2 * diff * H_row
    H_grad = -2 * diff * W_row
    W[:, key[1]] = W_row - step_size * W_grad
    H[:, key[2]] = H_row - step_size * H_grad
end
`

func BenchmarkParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchSrc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyze(b *testing.B) {
	loop, err := Parse(benchSrc)
	if err != nil {
		b.Fatal(err)
	}
	env := &Env{Arrays: map[string][]int64{
		"ratings": {1000, 800}, "W": {32, 1000}, "H": {32, 800},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(loop, env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpretIteration measures one interpreted MF SGD step —
// the per-iteration overhead the DSL execution path pays over a native
// Go kernel.
func BenchmarkInterpretIteration(b *testing.B) {
	loop, err := Parse(benchSrc)
	if err != nil {
		b.Fatal(err)
	}
	m := NewMachine()
	m.Arrays["ratings"] = dsm.NewSparse("ratings", 100, 100)
	w := dsm.NewDense("W", 16, 100)
	h := dsm.NewDense("H", 16, 100)
	m.Arrays["W"] = w
	m.Arrays["H"] = h
	m.Globals["step_size"] = float64(0.01)
	key := []int64{3, 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.RunIteration(loop, key, 1.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrefetchSliceSynthesis(b *testing.B) {
	src := `
for (key, v) in samples
    idx = floor(v * 100) + 1
    w = weights[idx]
    g = sigmoid(w) - 1
    w_buf[idx] += 0 - g
end
`
	loop, err := Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	env := &Env{
		Arrays:  map[string][]int64{"samples": {1000}, "weights": {100}},
		Buffers: map[string]string{"w_buf": "weights"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := PrefetchSlice(loop, env, "weights"); err != nil {
			b.Fatal(err)
		}
	}
}
