// Package lang implements Orion's front-end as a small imperative DSL
// with Julia-flavored syntax. The paper's implementation analyzes Julia
// ASTs inside the @parallel_for macro; Go has no macro system, so this
// package provides the equivalent pipeline explicitly:
//
//	source text → lexer → parser → AST
//	            → static analysis  → ir.LoopSpec  (Fig. 6 "loop information")
//	            → interpreter      → executes the loop body on DistArrays
//	            → program slicing  → synthesized prefetch function (§4.4)
//
// The supported subset covers the paper's applications: a for-loop over
// a DistArray's (key, value) pairs; scalar and vector arithmetic;
// DistArray point, range and full-dimension subscripts; if/else; calls
// to a fixed set of math builtins; assignments to driver variables
// (accumulators).
package lang

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies lexical tokens.
type TokKind int

const (
	TokEOF TokKind = iota
	TokNewline
	TokIdent
	TokNumber
	TokKeyword  // for, in, end, if, else, true, false
	TokOp       // + - * / ^ == != <= >= < > = += -= *= /=
	TokLParen   // (
	TokRParen   // )
	TokLBracket // [
	TokRBracket // ]
	TokComma
	TokColon
)

func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokNewline:
		return "newline"
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokKeyword:
		return "keyword"
	case TokOp:
		return "operator"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokLBracket:
		return "'['"
	case TokRBracket:
		return "']'"
	case TokComma:
		return "','"
	case TokColon:
		return "':'"
	default:
		return fmt.Sprintf("TokKind(%d)", int(k))
	}
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	if t.Text == "" {
		return t.Kind.String()
	}
	return fmt.Sprintf("%s %q", t.Kind, t.Text)
}

var keywords = map[string]bool{
	"for": true, "in": true, "end": true,
	"if": true, "else": true, "elseif": true,
	"true": true, "false": true,
}

// Lex tokenizes source text. Comments run from '#' to end of line.
// Newlines are significant (statement terminators). Errors are
// *SyntaxError values carrying the offending position.
func Lex(src string) ([]Token, error) { return LexAt(src, 1) }

// LexAt tokenizes source text whose first line is numbered startLine —
// used when the loop source is embedded in a larger program file so
// token positions cite lines of the whole file.
func LexAt(src string, startLine int) ([]Token, error) {
	var toks []Token
	line, col := startLine, 1
	if startLine < 1 {
		line = 1
	}
	i := 0
	emit := func(k TokKind, text string) {
		toks = append(toks, Token{Kind: k, Text: text, Line: line, Col: col})
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			// Collapse consecutive newlines.
			if len(toks) > 0 && toks[len(toks)-1].Kind != TokNewline {
				emit(TokNewline, "")
			}
			line++
			col = 1
			i++
			continue
		case c == ' ' || c == '\t' || c == '\r':
			i++
			col++
			continue
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
			continue
		case c == '(':
			emit(TokLParen, "(")
			i++
		case c == ')':
			emit(TokRParen, ")")
			i++
		case c == '[':
			emit(TokLBracket, "[")
			i++
		case c == ']':
			emit(TokRBracket, "]")
			i++
		case c == ',':
			emit(TokComma, ",")
			i++
		case c == ':':
			emit(TokColon, ":")
			i++
		case strings.ContainsRune("+-*/^=!<>", rune(c)):
			op := string(c)
			if i+1 < len(src) && src[i+1] == '=' {
				op += "="
				i++
			}
			if op == "!" {
				return nil, &SyntaxError{Pos: Pos{Line: line, Col: col}, Msg: "unexpected '!'"}
			}
			emit(TokOp, op)
			i++
		case c >= '0' && c <= '9' || c == '.' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9':
			start := i
			seenDot := false
			seenExp := false
			for i < len(src) {
				d := src[i]
				if d >= '0' && d <= '9' {
					i++
					continue
				}
				if d == '.' && !seenDot && !seenExp {
					// Don't consume the start of a range like 1:3 —
					// '.' only continues a number.
					seenDot = true
					i++
					continue
				}
				if (d == 'e' || d == 'E') && !seenExp && i+1 < len(src) &&
					(src[i+1] >= '0' && src[i+1] <= '9' || src[i+1] == '-' || src[i+1] == '+') {
					seenExp = true
					i += 2
					continue
				}
				break
			}
			emit(TokNumber, src[start:i])
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < len(src) && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				i++
			}
			word := src[start:i]
			if keywords[word] {
				emit(TokKeyword, word)
			} else {
				emit(TokIdent, word)
			}
		default:
			return nil, &SyntaxError{Pos: Pos{Line: line, Col: col}, Msg: fmt.Sprintf("unexpected character %q", string(c))}
		}
		col += len(toks[len(toks)-1].Text)
	}
	if len(toks) > 0 && toks[len(toks)-1].Kind != TokNewline {
		toks = append(toks, Token{Kind: TokNewline, Line: line, Col: col})
	}
	toks = append(toks, Token{Kind: TokEOF, Line: line, Col: col})
	return toks, nil
}
