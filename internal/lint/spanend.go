package lint

import (
	"fmt"
	"go/ast"
	"go/token"
)

// SpanEnd flags trace spans that are started but not ended on every
// return path. The obs tracing convention is
//
//	start := tb.Begin()
//	...
//	tb.End("name", "cat", start)   // or EndN / EndNN
//
// and an early `return err` between the two silently drops the span:
// the trace shows a hole exactly where the interesting (failing) run
// went. The check is lexical per function scope: every return
// statement after a Begin assignment must be preceded by a use of the
// span variable (normally the End call), the return itself must use
// it, or a defer in the function must consume it.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc:  "every trace span started with Begin() is ended on all return paths",
	Run:  runSpanEnd,
}

func runSpanEnd(p *Pass) []Finding {
	var out []Finding
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		funcBodies(f, func(body *ast.BlockStmt) {
			out = append(out, checkSpans(p, body)...)
		})
	}
	return out
}

// beginAssign matches `x := recv.Begin()` (or `x = recv.Begin()`).
func beginAssign(n ast.Node) (*ast.AssignStmt, string) {
	as, ok := n.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, ""
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil, ""
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return nil, ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Begin" {
		return nil, ""
	}
	return as, id.Name
}

func checkSpans(p *Pass, body *ast.BlockStmt) []Finding {
	// One shallow walk collects the function's Begin assignments,
	// return statements, defers, and identifier references; nested
	// function literals are separate scopes.
	type span struct {
		assign *ast.AssignStmt
		name   string
	}
	var spans []span
	var returns []*ast.ReturnStmt
	uses := map[string][]token.Pos{} // ident name → reference positions
	deferred := map[string]bool{}    // names consumed by a defer

	inspectShallow(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if as, name := beginAssign(x); as != nil {
				spans = append(spans, span{assign: as, name: name})
			}
		case *ast.ReturnStmt:
			returns = append(returns, x)
		case *ast.DeferStmt:
			ast.Inspect(x.Call, func(d ast.Node) bool {
				if id, ok := d.(*ast.Ident); ok {
					deferred[id.Name] = true
				}
				return true
			})
		case *ast.Ident:
			uses[x.Name] = append(uses[x.Name], x.Pos())
		}
		return true
	})

	var out []Finding
	for _, s := range spans {
		if deferred[s.name] {
			continue
		}
		// References to the span variable after its Begin assignment.
		var refs []token.Pos
		for _, pos := range uses[s.name] {
			if pos > s.assign.End() {
				refs = append(refs, pos)
			}
		}
		report := func(format string, args ...any) {
			out = append(out, Finding{
				Analyzer: "spanend",
				Pos:      p.Fset.Position(s.assign.Pos()),
				Message:  fmt.Sprintf("span %q started here: ", s.name) + fmt.Sprintf(format, args...),
			})
		}
		if len(refs) == 0 {
			report("never ended (call End/EndN with it, or remove the Begin)")
			continue
		}
		for _, ret := range returns {
			if ret.Pos() < s.assign.End() {
				continue
			}
			covered := false
			for _, pos := range refs {
				// A use before the return, or inside the return
				// expression itself, covers this path.
				if pos < ret.Pos() || (pos >= ret.Pos() && pos <= ret.End()) {
					covered = true
					break
				}
			}
			if !covered {
				report("not ended on the return path at line %d (End it before returning, or use defer)",
					p.Fset.Position(ret.Pos()).Line)
			}
		}
	}
	return out
}
