package lint

import (
	"go/ast"
	"strings"
)

// MsgRetain flags aliases of runtime message payload slices that
// outlive the message. runtime.Msg.reset() reuses the backing storage
// of the hot-path payload slices (Offsets, Values, PartDims) across
// messages on a connection — and raw rotation frames additionally
// carry Values in pooled transport buffers (runtime/bufpool) that are
// recycled once the receiving partition is replaced — so storing one
// of them — into a struct field, a non-Msg composite literal, or a
// return value — hands out memory the next message (or the pool) will
// overwrite. The correct idiom is an explicit clone:
//
//	saved.offs = append([]int64(nil), msg.Offsets...)
//
// or, for pooled rotation payloads, an explicit ownership transfer
// that nils the source field (see servePeer's rotation handling).
// Transient uses stay allowed: element reads (msg.Values[i]), len/cap,
// range, passing the slice to a call, and building a response Msg
// literal (encoded and sent before the received message is reused).
var MsgRetain = &Analyzer{
	Name: "msgretain",
	Doc:  "runtime Msg payload slices (Offsets/Values/PartDims, incl. pooled transport buffers) must not be retained past the handler",
	Run:  runMsgRetain,
}

// payloadSel reports whether e is exactly a payload-slice selector
// (<recv>.Offsets, <recv>.Values, or <recv>.PartDims), unwrapping
// parentheses.
func payloadSel(e ast.Expr) (string, bool) {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if sel.Sel.Name != "Offsets" && sel.Sel.Name != "Values" && sel.Sel.Name != "PartDims" {
		return "", false
	}
	if x, ok := sel.X.(*ast.Ident); ok {
		return x.Name + "." + sel.Sel.Name, true
	}
	return sel.Sel.Name, true
}

// isMsgLit reports whether the composite literal builds a Msg (a
// response that is encoded before the aliased message is reused).
func isMsgLit(lit *ast.CompositeLit) bool {
	switch t := lit.Type.(type) {
	case *ast.Ident:
		return t.Name == "Msg"
	case *ast.SelectorExpr:
		return t.Sel.Name == "Msg"
	}
	return false
}

func runMsgRetain(p *Pass) []Finding {
	if !strings.HasPrefix(p.Path, "orion/internal/runtime") {
		return nil
	}
	var out []Finding
	report := func(n ast.Node, name, how string) {
		out = append(out, Finding{
			Analyzer: "msgretain",
			Pos:      p.Fset.Position(n.Pos()),
			Message: name + " " + how + " retains the message's backing storage " +
				"(Msg.reset reuses it for the next message); clone with append([]T(nil), s...)",
		})
	}
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range x.Rhs {
					name, ok := payloadSel(rhs)
					if !ok {
						continue
					}
					// Pairwise LHS when counts match; otherwise any
					// field-store LHS taints the multi-assign.
					var lhs []ast.Expr
					if len(x.Lhs) == len(x.Rhs) {
						lhs = x.Lhs[i : i+1]
					} else {
						lhs = x.Lhs
					}
					for _, l := range lhs {
						if _, isField := l.(*ast.SelectorExpr); isField {
							report(rhs, name, "assigned to a struct field")
						}
					}
				}
			case *ast.CompositeLit:
				if isMsgLit(x) {
					return true
				}
				for _, el := range x.Elts {
					v := el
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if name, ok := payloadSel(v); ok {
						report(v, name, "stored in a composite literal")
					}
				}
			case *ast.ReturnStmt:
				for _, res := range x.Results {
					if name, ok := payloadSel(res); ok {
						report(res, name, "returned")
					}
				}
			}
			return true
		})
	}
	return out
}
