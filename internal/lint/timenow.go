package lint

import (
	"go/ast"
)

// deterministicPkgs are the packages whose behavior must be a pure
// function of their inputs: the static pipeline (fingerprints, golden
// plans) and the replay-deterministic execution semantics depend on
// it. A wall-clock read anywhere in them silently breaks plan-cache
// content hashes, golden tests, and chaos-harness replays.
var deterministicPkgs = map[string]bool{
	"orion/internal/ir":         true,
	"orion/internal/lang":       true,
	"orion/internal/dep":        true,
	"orion/internal/sched":      true,
	"orion/internal/unimodular": true,
	"orion/internal/plan":       true,
	"orion/internal/check":      true,
	"orion/internal/diag":       true,
	"orion/internal/dsm":        true,
	"orion/internal/dslkernel":  true,
	"orion/internal/engine":     true,
}

// wallClockFuncs are the time-package functions that observe or depend
// on the wall clock (or a real timer).
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"Sleep":     true,
}

// TimeNow flags wall-clock reads inside the deterministic packages.
var TimeNow = &Analyzer{
	Name: "timenow",
	Doc:  "no time.Now (or other wall-clock reads) in deterministic replay/fingerprint packages",
	Run:  runTimeNow,
}

func runTimeNow(p *Pass) []Finding {
	if !deterministicPkgs[p.Path] {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		// Resolve the local name of the "time" import (usually "time").
		timeName := ""
		for _, imp := range f.Imports {
			if imp.Path.Value != `"time"` {
				continue
			}
			timeName = "time"
			if imp.Name != nil {
				timeName = imp.Name.Name
			}
		}
		if timeName == "" || timeName == "_" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Name != timeName || !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			out = append(out, Finding{
				Analyzer: "timenow",
				Pos:      p.Fset.Position(sel.Pos()),
				Message: "wall-clock read " + timeName + "." + sel.Sel.Name +
					" in deterministic package " + p.Path +
					" (plan fingerprints and replay depend on it being input-pure; inject the clock from the caller)",
			})
			return true
		})
	}
	return out
}
