package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Load parses package directories under the module at root into
// passes, without invoking the go tool: the module path is read from
// go.mod and import paths are derived from directory layout. Each
// pattern is either a directory relative to root ("./internal/dep") or
// a recursive pattern ("./...", "./internal/..."). An empty pattern
// list means the whole module.
func Load(root string, patterns []string) ([]*Pass, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	dirs := map[string]bool{}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			base := filepath.Join(root, strings.TrimSuffix(rest, "/"))
			if err := walkGoDirs(base, dirs); err != nil {
				return nil, err
			}
			continue
		}
		dirs[filepath.Join(root, pat)] = true
	}

	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	var passes []*Pass
	for _, dir := range sorted {
		p, err := parseDir(root, modPath, dir)
		if err != nil {
			return nil, err
		}
		if p != nil {
			passes = append(passes, p)
		}
	}
	return passes, nil
}

// modulePath extracts the module path from the first "module" line.
func modulePath(gomod string) (string, error) {
	b, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// walkGoDirs collects every directory under base that holds .go files,
// skipping hidden directories, testdata, and vendor trees.
func walkGoDirs(base string, dirs map[string]bool) error {
	return filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})
}

// parseDir parses one package directory into a Pass; nil when the
// directory holds no .go files.
func parseDir(root, modPath, dir string) (*Pass, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	path := modPath
	if rel != "." {
		path = modPath + "/" + filepath.ToSlash(rel)
	}
	return &Pass{Fset: fset, Path: path, Dir: dir, Files: files}, nil
}
