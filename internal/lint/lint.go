// Package lint is Orion's project-specific static analysis suite for
// the Go runtime itself — a minimal, dependency-free go/analysis-style
// framework plus the analyzers cmd/orion-lint runs over this
// repository. The framework is deliberately small: an Analyzer
// inspects the parsed (not type-checked) syntax of one package and
// reports positioned findings. That is enough for the project
// invariants checked here, which are all syntactic:
//
//	timenow   — no wall-clock reads (time.Now and friends) inside the
//	            deterministic packages that replay and fingerprinting
//	            depend on
//	spanend   — every obs trace span started with Begin() is ended on
//	            every return path (or covered by a defer)
//	msgretain — runtime message payload slices (Msg.Offsets/.Values)
//	            are never retained past the handler: Msg.reset() reuses
//	            their backing storage, so a stored alias is corrupted
//	            by the next message
//
// A finding can be suppressed with a directive comment on the flagged
// line or the line above it:
//
//	//lint:ignore <analyzer> <reason>
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one named check over a package's syntax.
type Analyzer struct {
	// Name identifies the analyzer in findings and ignore directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects the package and returns its findings.
	Run func(p *Pass) []Finding
}

// Pass is the unit of work handed to an analyzer: one parsed package.
type Pass struct {
	Fset *token.FileSet
	// Path is the package's import path (e.g. "orion/internal/dep").
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Files is every parsed .go file in the directory, test files
	// included; analyzers that only apply to production code skip
	// files via IsTestFile.
	Files []*ast.File
}

// IsTestFile reports whether the file is a _test.go file.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// Finding is one reported problem.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzers is the project suite, in the order cmd/orion-lint runs it.
func Analyzers() []*Analyzer {
	return []*Analyzer{TimeNow, SpanEnd, MsgRetain}
}

// Run applies the analyzers to every pass, filters findings suppressed
// by //lint:ignore directives, and returns them in file/line order.
func Run(passes []*Pass, analyzers []*Analyzer) []Finding {
	var out []Finding
	for _, p := range passes {
		ignores := collectIgnores(p)
		for _, a := range analyzers {
			for _, f := range a.Run(p) {
				if ignores.suppressed(a.Name, f.Pos) {
					continue
				}
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// ignoreSet records //lint:ignore directives: analyzer name → file →
// set of directive lines. A directive suppresses findings of that
// analyzer on its own line and on the following line (the usual
// placement is the line above the flagged statement).
type ignoreSet map[string]map[string]map[int]bool

func (s ignoreSet) suppressed(analyzer string, pos token.Position) bool {
	files := s[analyzer]
	if files == nil {
		return false
	}
	lines := files[pos.Filename]
	return lines[pos.Line] || lines[pos.Line-1]
}

func collectIgnores(p *Pass) ignoreSet {
	set := ignoreSet{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore"))
				if len(fields) == 0 {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				name := fields[0]
				if set[name] == nil {
					set[name] = map[string]map[int]bool{}
				}
				if set[name][pos.Filename] == nil {
					set[name][pos.Filename] = map[int]bool{}
				}
				set[name][pos.Filename][pos.Line] = true
			}
		}
	}
	return set
}

// inspectShallow walks the statements of a function body without
// descending into nested function literals — each function is analyzed
// in its own scope.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok && node != n {
			return false
		}
		return fn(node)
	})
}

// funcBodies yields every function scope in the file: declarations and
// function literals, each paired with its body.
func funcBodies(f *ast.File, fn func(body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			if x.Body != nil {
				fn(x.Body)
			}
		case *ast.FuncLit:
			fn(x.Body)
		}
		return true
	})
}
