package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parsePass builds a Pass from in-memory sources (filename → source).
func parsePass(t *testing.T, path string, sources map[string]string) *Pass {
	t.Helper()
	fset := token.NewFileSet()
	var files []*ast.File
	for name, src := range sources {
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	return &Pass{Fset: fset, Path: path, Dir: ".", Files: files}
}

func findingStrings(fs []Finding) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.String()
	}
	return out
}

func TestTimeNowFlagsDeterministicPackages(t *testing.T) {
	src := `package dep
import "time"
func now() time.Time { return time.Now() }
func ok() time.Duration { return time.Hour }
`
	p := parsePass(t, "orion/internal/dep", map[string]string{"a.go": src})
	fs := TimeNow.Run(p)
	if len(fs) != 1 {
		t.Fatalf("want 1 finding, got %v", findingStrings(fs))
	}
	if !strings.Contains(fs[0].Message, "time.Now") {
		t.Errorf("finding should name time.Now: %s", fs[0].Message)
	}

	// The same code in a non-deterministic package is fine.
	p2 := parsePass(t, "orion/internal/runtime", map[string]string{"a.go": src})
	if fs := TimeNow.Run(p2); len(fs) != 0 {
		t.Errorf("runtime package should be exempt, got %v", findingStrings(fs))
	}

	// Test files are exempt even in deterministic packages.
	p3 := parsePass(t, "orion/internal/dep", map[string]string{"a_test.go": src})
	if fs := TimeNow.Run(p3); len(fs) != 0 {
		t.Errorf("test files should be exempt, got %v", findingStrings(fs))
	}
}

func TestTimeNowRenamedImport(t *testing.T) {
	src := `package lang
import clock "time"
func now() clock.Time { return clock.Now() }
`
	p := parsePass(t, "orion/internal/lang", map[string]string{"a.go": src})
	if fs := TimeNow.Run(p); len(fs) != 1 {
		t.Fatalf("renamed time import should still be flagged, got %v", findingStrings(fs))
	}
}

const spanSrcLeaky = `package runtime
func (m *M) step() error {
	start := m.trace.Begin()
	if m.bad() {
		return m.err // span leaked
	}
	m.trace.EndN("step", "master", start, "n", 1)
	return nil
}
`

const spanSrcFixed = `package runtime
func (m *M) step() error {
	start := m.trace.Begin()
	if m.bad() {
		m.trace.EndN("step", "master", start, "n", 0)
		return m.err
	}
	m.trace.EndN("step", "master", start, "n", 1)
	return nil
}
`

const spanSrcDefer = `package runtime
func (m *M) step() error {
	start := m.trace.Begin()
	defer func() { m.trace.End("step", "master", start) }()
	if m.bad() {
		return m.err
	}
	return nil
}
`

const spanSrcNeverEnded = `package runtime
func (m *M) step() {
	start := m.trace.Begin()
	_ = start.String()
}
`

func TestSpanEnd(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want int
	}{
		{"leaky early return", spanSrcLeaky, 1},
		{"ended on all paths", spanSrcFixed, 0},
		{"covered by defer", spanSrcDefer, 0},
	}
	for _, tc := range cases {
		p := parsePass(t, "orion/internal/runtime", map[string]string{"a.go": tc.src})
		fs := SpanEnd.Run(p)
		if len(fs) != tc.want {
			t.Errorf("%s: want %d findings, got %v", tc.name, tc.want, findingStrings(fs))
		}
	}
	// A span whose variable is used (so not "never ended") but that
	// has no returns at all is accepted — the lexical check is about
	// return paths.
	p := parsePass(t, "orion/internal/runtime", map[string]string{"a.go": spanSrcNeverEnded})
	if fs := SpanEnd.Run(p); len(fs) != 0 {
		t.Errorf("used span without returns should pass, got %v", findingStrings(fs))
	}
}

func TestSpanEndNeverUsed(t *testing.T) {
	src := `package runtime
func (m *M) step() {
	start := m.trace.Begin()
	m.work()
}
`
	p := parsePass(t, "orion/internal/runtime", map[string]string{"a.go": src})
	fs := SpanEnd.Run(p)
	if len(fs) != 1 || !strings.Contains(fs[0].Message, "never ended") {
		t.Fatalf("want one never-ended finding, got %v", findingStrings(fs))
	}
}

func TestSpanEndNestedFuncScopes(t *testing.T) {
	// The Begin in the outer function must not be "covered" by a use
	// inside an unrelated nested function literal that never runs, and
	// a leak inside a literal is found independently.
	src := `package runtime
func (m *M) outer() error {
	go func() {
		s := m.trace.Begin()
		if m.bad() {
			return // leak inside the literal
		}
		m.trace.End("x", "y", s)
	}()
	return nil
}
`
	p := parsePass(t, "orion/internal/runtime", map[string]string{"a.go": src})
	fs := SpanEnd.Run(p)
	if len(fs) != 1 {
		t.Fatalf("want the literal's leak flagged once, got %v", findingStrings(fs))
	}
}

func TestMsgRetain(t *testing.T) {
	src := `package runtime
type pending struct {
	offs []int64
	vals []float64
}
func (e *E) handle(msg *Msg) *pending {
	p := &pending{}
	p.offs = msg.Offsets                      // BAD: field store
	p.vals = append([]float64(nil), msg.Values...) // ok: cloned
	e.install(msg.Array, msg.Offsets, nil)    // ok: call argument
	_ = msg.Values[0]                         // ok: element read
	_ = len(msg.Offsets)                      // ok: len
	resp := Msg{Offsets: msg.Offsets}         // ok: response Msg literal
	_ = resp
	q := pending{offs: msg.Offsets}           // BAD: non-Msg literal
	_ = q
	return p
}
func leak(msg *Msg) []int64 {
	return msg.Offsets // BAD: returned
}
`
	p := parsePass(t, "orion/internal/runtime", map[string]string{"a.go": src})
	fs := MsgRetain.Run(p)
	if len(fs) != 3 {
		t.Fatalf("want 3 findings, got %v", findingStrings(fs))
	}

	// Other packages are out of scope.
	p2 := parsePass(t, "orion/internal/driver", map[string]string{"a.go": src})
	if fs := MsgRetain.Run(p2); len(fs) != 0 {
		t.Errorf("non-runtime package should be exempt, got %v", findingStrings(fs))
	}
}

// TestMsgRetainPooledTransportBuffers: raw rotation frames deliver
// Values in pooled transport buffers and carry the partition shape in
// PartDims — retaining either past the handler aliases storage the
// pool (or the next frame) will recycle. The subdirectory package path
// (runtime/bufpool) is in scope too.
func TestMsgRetainPooledTransportBuffers(t *testing.T) {
	src := `package runtime
type part struct {
	dims []int64
	data []float64
}
func adopt(msg *Msg) *part {
	p := &part{}
	p.dims = msg.PartDims               // BAD: pooled dims retained
	p.data = msg.Values                 // BAD: pooled payload retained
	fwd := Msg{PartDims: msg.PartDims}  // ok: forwarded Msg literal
	_ = fwd
	clone := append([]int64(nil), msg.PartDims...) // ok: cloned
	_ = clone
	return p
}
func leakDims(msg *Msg) []int64 {
	return msg.PartDims // BAD: returned
}
`
	p := parsePass(t, "orion/internal/runtime", map[string]string{"a.go": src})
	fs := MsgRetain.Run(p)
	if len(fs) != 3 {
		t.Fatalf("want 3 findings, got %v", findingStrings(fs))
	}
	for _, f := range fs {
		if !strings.Contains(f.Message, "backing storage") {
			t.Errorf("finding %q does not explain the retention hazard", f.Message)
		}
	}

	// bufpool lives under runtime/ and must self-lint as in-scope.
	p3 := parsePass(t, "orion/internal/runtime/bufpool", map[string]string{"a.go": src})
	if fs := MsgRetain.Run(p3); len(fs) != 3 {
		t.Errorf("runtime/bufpool should be in scope, got %v", findingStrings(fs))
	}
}

func TestIgnoreDirective(t *testing.T) {
	src := `package dep
import "time"
func now() time.Time {
	//lint:ignore timenow this clock is informational only
	return time.Now()
}
func other() time.Time { return time.Now() }
`
	p := parsePass(t, "orion/internal/dep", map[string]string{"a.go": src})
	fs := Run([]*Pass{p}, []*Analyzer{TimeNow})
	if len(fs) != 1 {
		t.Fatalf("directive should suppress exactly one finding, got %v", findingStrings(fs))
	}
	pos := fs[0].Pos
	if pos.Line != 7 {
		t.Errorf("surviving finding should be the undirected one (line 7), got line %d", pos.Line)
	}
}

func TestLoadRepo(t *testing.T) {
	// Loading the real module exercises the loader end to end; the
	// repository itself must lint clean (this is the same gate as
	// `make lint`).
	passes, err := Load("../..", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(passes) < 10 {
		t.Fatalf("expected to load the whole module, got %d packages", len(passes))
	}
	if fs := Run(passes, Analyzers()); len(fs) != 0 {
		t.Errorf("repository must lint clean:\n%s", strings.Join(findingStrings(fs), "\n"))
	}
}
