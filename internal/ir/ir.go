// Package ir defines Orion's loop intermediate representation.
//
// Orion's front-end (the @parallel_for macro in the paper, the DSL in
// internal/lang here) reduces a serial for-loop over a DistArray to a
// LoopSpec: the iteration space, the set of static DistArray references
// with their subscripts, the ordering requirement, and the inherited
// driver variables. All dependence analysis (internal/dep) and schedule
// selection (internal/sched) operate on this record alone.
package ir

import (
	"fmt"
	"strings"
)

// SubscriptKind classifies one position of a DistArray subscript, the
// "stype" of the 3-tuple (dim_idx, const, stype) in Section 4.2 of the
// paper.
type SubscriptKind int

const (
	// SubIndex is a loop index variable plus or minus a constant,
	// e.g. key[1]+2. This is the only kind that carries accurate
	// dependence information.
	SubIndex SubscriptKind = iota
	// SubConst is a compile-time integer constant, e.g. A[3, ...].
	SubConst
	// SubRange is a set query over a static range, e.g. A[1:3, ...].
	// Lo/Hi are inclusive bounds; a full-dimension query (":") is
	// represented with Full=true.
	SubRange
	// SubRuntime is a subscript whose value depends on runtime data
	// (the element value, another DistArray read, ...). It is
	// conservatively treated as possibly taking any value within the
	// array's bounds.
	SubRuntime
	// SubAffine is a general affine subscript c*key[d] + b, optionally
	// widened by an inner-loop offset into a contiguous window: the
	// reference touches the 0-based elements
	//
	//	coeff*(key[d]+1) + Const + t   for t in [0, Span-1]
	//
	// where key[d] is the 0-based loop index and coeff is either the
	// compile-time constant Coeff or, when CoeffVar is set, the runtime
	// value of the inherited driver variable named CoeffVar (a symbolic
	// stride — the dependence analyzer can only discharge it with a
	// synthesized runtime guard).
	SubAffine
)

func (k SubscriptKind) String() string {
	switch k {
	case SubIndex:
		return "index"
	case SubConst:
		return "const"
	case SubRange:
		return "range"
	case SubRuntime:
		return "runtime"
	case SubAffine:
		return "affine"
	default:
		return fmt.Sprintf("SubscriptKind(%d)", int(k))
	}
}

// Subscript is one position of a DistArray reference's subscript.
type Subscript struct {
	Kind SubscriptKind
	// Dim is the iteration-space dimension of the loop index variable
	// (dim_idx in the paper), valid when Kind == SubIndex.
	Dim int
	// Const is the additive constant for SubIndex, or the value for
	// SubConst.
	Const int64
	// Lo, Hi bound a SubRange (inclusive). Ignored when Full is set.
	Lo, Hi int64
	// Full marks a whole-dimension range query (":").
	Full bool
	// Coeff is the constant stride multiplying the 1-based loop index
	// for SubAffine. Ignored (and zero) when CoeffVar is set.
	Coeff int64
	// CoeffVar names the inherited driver variable supplying the stride
	// at dispatch time for a SubAffine subscript whose coefficient is
	// not a compile-time constant.
	CoeffVar string
	// Span is the width (>= 1) of the contiguous element window a
	// SubAffine subscript covers: an inner-range offset j in lo:hi turns
	// a point access into a window of hi-lo+1 elements.
	Span int64
}

// Index returns a SubIndex subscript key[dim] + c.
func Index(dim int, c int64) Subscript { return Subscript{Kind: SubIndex, Dim: dim, Const: c} }

// Const returns a SubConst subscript.
func Const(v int64) Subscript { return Subscript{Kind: SubConst, Const: v} }

// FullRange returns a ":" subscript.
func FullRange() Subscript { return Subscript{Kind: SubRange, Full: true} }

// Range returns an inclusive static range subscript lo:hi.
func Range(lo, hi int64) Subscript { return Subscript{Kind: SubRange, Lo: lo, Hi: hi} }

// Runtime returns a data-dependent subscript.
func Runtime() Subscript { return Subscript{Kind: SubRuntime} }

// Affine returns a SubAffine subscript coeff*(key[dim]+1) + c covering a
// window of span consecutive elements.
func Affine(dim int, coeff, c, span int64) Subscript {
	return Subscript{Kind: SubAffine, Dim: dim, Coeff: coeff, Const: c, Span: span}
}

// AffineVar returns a SubAffine subscript whose stride is the runtime
// value of the inherited driver variable coeffVar.
func AffineVar(dim int, coeffVar string, c, span int64) Subscript {
	return Subscript{Kind: SubAffine, Dim: dim, CoeffVar: coeffVar, Const: c, Span: span}
}

func (s Subscript) String() string {
	switch s.Kind {
	case SubIndex:
		if s.Const == 0 {
			return fmt.Sprintf("key[%d]", s.Dim+1)
		}
		return fmt.Sprintf("key[%d]%+d", s.Dim+1, s.Const)
	case SubConst:
		return fmt.Sprintf("%d", s.Const)
	case SubRange:
		if s.Full {
			return ":"
		}
		return fmt.Sprintf("%d:%d", s.Lo, s.Hi)
	case SubRuntime:
		return "?"
	case SubAffine:
		coeff := s.CoeffVar
		if coeff == "" {
			coeff = fmt.Sprintf("%d", s.Coeff)
		}
		out := fmt.Sprintf("%s*(key[%d]+1)", coeff, s.Dim+1)
		if s.Const != 0 {
			out += fmt.Sprintf("%+d", s.Const)
		}
		if s.Span > 1 {
			out += fmt.Sprintf("+[0:%d]", s.Span-1)
		}
		return out
	default:
		return "<invalid>"
	}
}

// ArrayRef is one static DistArray reference inside the loop body.
type ArrayRef struct {
	Array   string
	Subs    []Subscript
	IsWrite bool
	// Buffered marks a write that the program routed through a
	// DistArrayBuffer (Section 3.3): it is exempt from dependence
	// analysis.
	Buffered bool
	// Line and Col locate the reference in the DSL source (1-based;
	// zero when the spec was constructed programmatically). They are
	// carried so dependence analysis and the diagnostics engine can
	// cite the offending references; String() and reference identity
	// ignore them.
	Line, Col int
}

// Pos renders the reference's source position ("line 7:5"), or "" when
// unknown.
func (r ArrayRef) Pos() string {
	if r.Line <= 0 {
		return ""
	}
	return fmt.Sprintf("line %d:%d", r.Line, r.Col)
}

func (r ArrayRef) String() string {
	subs := make([]string, len(r.Subs))
	for i, s := range r.Subs {
		subs[i] = s.String()
	}
	mode := "read"
	if r.IsWrite {
		mode = "write"
		if r.Buffered {
			mode = "buffered-write"
		}
	}
	return fmt.Sprintf("%s[%s] (%s)", r.Array, strings.Join(subs, ", "), mode)
}

// LoopSpec is the complete loop information record (Fig. 6).
type LoopSpec struct {
	// Name identifies the loop for logging and for the worker-side
	// kernel registry.
	Name string
	// IterSpaceArray is the DistArray the loop ranges over.
	IterSpaceArray string
	// Dims holds the iteration space extents, one per dimension. The
	// iteration space must be constant and known when the loop is
	// compiled (Section 3.2, "Applicability").
	Dims []int64
	// Refs are all static DistArray references in the loop body.
	Refs []ArrayRef
	// Ordered requires the parallelization to preserve the
	// lexicographic iteration order. The default (false) only
	// requires serializability (Section 4.3, "Relaxing the ordering
	// constraints").
	Ordered bool
	// Inherited lists driver-program variables captured read-only by
	// the loop body.
	Inherited []string
}

// NumDims returns the number of iteration-space dimensions.
func (l *LoopSpec) NumDims() int { return len(l.Dims) }

// Validate reports structural problems with the spec.
func (l *LoopSpec) Validate() error {
	if l.IterSpaceArray == "" {
		return fmt.Errorf("ir: loop %q has no iteration space array", l.Name)
	}
	if len(l.Dims) == 0 {
		return fmt.Errorf("ir: loop %q has a zero-dimensional iteration space", l.Name)
	}
	for _, d := range l.Dims {
		if d <= 0 {
			return fmt.Errorf("ir: loop %q has non-positive iteration space extent %d", l.Name, d)
		}
	}
	for _, r := range l.Refs {
		if r.Array == "" {
			return fmt.Errorf("ir: loop %q references an unnamed array", l.Name)
		}
		if len(r.Subs) == 0 {
			return fmt.Errorf("ir: loop %q: reference to %q has no subscripts", l.Name, r.Array)
		}
		for _, s := range r.Subs {
			if (s.Kind == SubIndex || s.Kind == SubAffine) && (s.Dim < 0 || s.Dim >= len(l.Dims)) {
				return fmt.Errorf("ir: loop %q: reference %s uses loop index dimension %d outside iteration space of %d dims",
					l.Name, r, s.Dim, len(l.Dims))
			}
			if s.Kind == SubAffine {
				if s.Span < 1 {
					return fmt.Errorf("ir: loop %q: reference %s has affine subscript with span %d < 1",
						l.Name, r, s.Span)
				}
				if s.CoeffVar != "" && s.Coeff != 0 {
					return fmt.Errorf("ir: loop %q: reference %s has affine subscript with both constant and symbolic coefficients",
						l.Name, r)
				}
			}
		}
	}
	return nil
}

// RefsTo returns the references to a given array, preserving order.
func (l *LoopSpec) RefsTo(array string) []ArrayRef {
	var out []ArrayRef
	for _, r := range l.Refs {
		if r.Array == array {
			out = append(out, r)
		}
	}
	return out
}

// Arrays returns the distinct array names referenced by the loop, in
// first-reference order.
func (l *LoopSpec) Arrays() []string {
	seen := make(map[string]bool)
	var out []string
	for _, r := range l.Refs {
		if !seen[r.Array] {
			seen[r.Array] = true
			out = append(out, r.Array)
		}
	}
	return out
}

// String renders the loop information block, mirroring the middle box
// of Fig. 6.
func (l *LoopSpec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Loop %s\n", l.Name)
	fmt.Fprintf(&b, "  Iteration space: %s %v\n", l.IterSpaceArray, l.Dims)
	if l.Ordered {
		fmt.Fprintf(&b, "  Iteration ordering: ordered\n")
	} else {
		fmt.Fprintf(&b, "  Iteration ordering: unordered\n")
	}
	var reads, writes []string
	for _, r := range l.Refs {
		if r.IsWrite {
			writes = append(writes, r.String())
		} else {
			reads = append(reads, r.String())
		}
	}
	fmt.Fprintf(&b, "  DistArray reads:  %s\n", strings.Join(reads, ", "))
	fmt.Fprintf(&b, "  DistArray writes: %s\n", strings.Join(writes, ", "))
	if len(l.Inherited) > 0 {
		fmt.Fprintf(&b, "  Inherited variables: %s\n", strings.Join(l.Inherited, ", "))
	}
	return b.String()
}
