package ir

import (
	"strings"
	"testing"
)

func TestSubscriptStrings(t *testing.T) {
	cases := []struct {
		s    Subscript
		want string
	}{
		{Index(0, 0), "key[1]"},
		{Index(1, 2), "key[2]+2"},
		{Index(0, -3), "key[1]-3"},
		{Const(5), "5"},
		{FullRange(), ":"},
		{Range(1, 4), "1:4"},
		{Runtime(), "?"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.s, got, c.want)
		}
	}
}

func TestSubscriptKindStrings(t *testing.T) {
	if SubIndex.String() != "index" || SubConst.String() != "const" ||
		SubRange.String() != "range" || SubRuntime.String() != "runtime" {
		t.Fatal("kind strings wrong")
	}
	if !strings.Contains(SubscriptKind(99).String(), "99") {
		t.Fatal("unknown kind should include the value")
	}
}

func TestArrayRefString(t *testing.T) {
	r := ArrayRef{Array: "W", Subs: []Subscript{FullRange(), Index(0, 0)}}
	if got := r.String(); got != "W[:, key[1]] (read)" {
		t.Fatalf("read ref = %q", got)
	}
	r.IsWrite = true
	if got := r.String(); got != "W[:, key[1]] (write)" {
		t.Fatalf("write ref = %q", got)
	}
	r.Buffered = true
	if got := r.String(); got != "W[:, key[1]] (buffered-write)" {
		t.Fatalf("buffered ref = %q", got)
	}
}

func validLoop() *LoopSpec {
	return &LoopSpec{
		Name:           "l",
		IterSpaceArray: "data",
		Dims:           []int64{4, 5},
		Refs: []ArrayRef{
			{Array: "A", Subs: []Subscript{Index(0, 0)}},
			{Array: "B", Subs: []Subscript{Index(1, 0)}, IsWrite: true},
			{Array: "A", Subs: []Subscript{Index(0, 1)}, IsWrite: true},
		},
		Inherited: []string{"lr"},
	}
}

func TestValidate(t *testing.T) {
	if err := validLoop().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := validLoop()
	bad.IterSpaceArray = ""
	if bad.Validate() == nil {
		t.Error("missing iteration space should fail")
	}
	bad = validLoop()
	bad.Dims = nil
	if bad.Validate() == nil {
		t.Error("zero-dim iteration space should fail")
	}
	bad = validLoop()
	bad.Dims = []int64{0, 5}
	if bad.Validate() == nil {
		t.Error("non-positive extent should fail")
	}
	bad = validLoop()
	bad.Refs[0].Array = ""
	if bad.Validate() == nil {
		t.Error("unnamed array should fail")
	}
	bad = validLoop()
	bad.Refs[0].Subs = nil
	if bad.Validate() == nil {
		t.Error("empty subscripts should fail")
	}
	bad = validLoop()
	bad.Refs[0].Subs = []Subscript{Index(7, 0)}
	if bad.Validate() == nil {
		t.Error("out-of-range loop dim should fail")
	}
}

func TestRefsToAndArrays(t *testing.T) {
	l := validLoop()
	if got := l.RefsTo("A"); len(got) != 2 {
		t.Fatalf("RefsTo(A) = %v", got)
	}
	if got := l.RefsTo("B"); len(got) != 1 || !got[0].IsWrite {
		t.Fatalf("RefsTo(B) = %v", got)
	}
	if got := l.RefsTo("C"); got != nil {
		t.Fatalf("RefsTo(C) = %v", got)
	}
	arrays := l.Arrays()
	if len(arrays) != 2 || arrays[0] != "A" || arrays[1] != "B" {
		t.Fatalf("Arrays = %v (want first-reference order)", arrays)
	}
}

func TestLoopSpecString(t *testing.T) {
	s := validLoop().String()
	for _, want := range []string{"Loop l", "Iteration space: data [4 5]", "unordered",
		"DistArray reads:", "DistArray writes:", "Inherited variables: lr"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
	ord := validLoop()
	ord.Ordered = true
	if !strings.Contains(ord.String(), "ordered") {
		t.Error("ordered flag not rendered")
	}
}

func TestNumDims(t *testing.T) {
	if validLoop().NumDims() != 2 {
		t.Fatal("NumDims wrong")
	}
}
