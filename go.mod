module orion

go 1.22
