// Package orion's root benchmark suite: one testing.B benchmark per
// table and figure of the paper's evaluation, each delegating to the
// experiment harness at the small scale. Run with:
//
//	go test -bench=. -benchmem
//
// For the full-scale reproduction (the numbers recorded in
// EXPERIMENTS.md) use: go run ./cmd/orion-bench -exp all
package orion

import (
	"testing"

	"orion/internal/bench"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	s := bench.Small()
	runner := bench.Experiments()[id]
	if runner == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := runner(s)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Body == "" {
			b.Fatal("empty report")
		}
	}
}

// BenchmarkTable2 regenerates Table 2 (applications and the strategy
// the analyzer selects for each).
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFig9a regenerates Fig. 9a (time per iteration vs workers).
func BenchmarkFig9a(b *testing.B) { runExperiment(b, "fig9a") }

// BenchmarkFig9b regenerates Fig. 9b (SGD MF convergence per iteration
// across parallelization schemes).
func BenchmarkFig9b(b *testing.B) { runExperiment(b, "fig9b") }

// BenchmarkFig9c regenerates Fig. 9c (LDA convergence per iteration).
func BenchmarkFig9c(b *testing.B) { runExperiment(b, "fig9c") }

// BenchmarkTable3 regenerates Table 3 (ordered vs unordered 2D
// parallelization throughput).
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFig10 regenerates Fig. 10 (Orion vs Bösen).
func BenchmarkFig10(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11 regenerates Fig. 11 (Orion vs STRADS).
func BenchmarkFig11(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12 regenerates Fig. 12 (bandwidth usage over time).
func BenchmarkFig12(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFig13 regenerates Fig. 13 (Orion vs TensorFlow-style
// dataflow).
func BenchmarkFig13(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkPrefetch regenerates the Section 6.3 bulk-prefetching rows.
func BenchmarkPrefetch(b *testing.B) { runExperiment(b, "prefetch") }

// BenchmarkTux2 regenerates the Section 6.1 throughput-vs-convergence
// comparison.
func BenchmarkTux2(b *testing.B) { runExperiment(b, "tux2") }

// BenchmarkSkewPartition runs the skew-aware partitioning ablation.
func BenchmarkSkewPartition(b *testing.B) { runExperiment(b, "ablation-skew") }

// BenchmarkDimHeuristic runs the partition-dimension heuristic ablation.
func BenchmarkDimHeuristic(b *testing.B) { runExperiment(b, "ablation-dims") }

// BenchmarkPipelineDepth runs the pipelined-rotation-depth ablation.
func BenchmarkPipelineDepth(b *testing.B) { runExperiment(b, "ablation-pipeline") }
