# Orion development targets. `make check` is the full gate: formatting,
# vet, build, tests, and the race detector on the concurrency-heavy
# packages.

GO ?= go

.PHONY: check fmt vet lint build test race chaos soak bench-smoke trace-smoke adapt-smoke vet-examples fuzz bench-baseline bench-obs bench-vm bench-transport golden-plans golden-plans-check

check: fmt vet lint build test race chaos bench-smoke trace-smoke adapt-smoke golden-plans-check

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Project-specific analyzers (internal/lint): wall-clock reads in
# deterministic packages, unended trace spans, retained Msg payloads.
lint:
	$(GO) run ./cmd/orion-lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The runtime, driver, engine, observability, and kernel-compilation
# packages exercise executors, rotation pipelines, trace buffers, and
# the simulator concurrently — run them under the race detector.
race:
	$(GO) test -race ./internal/runtime/... ./internal/driver ./internal/engine \
		./internal/dslkernel/... ./internal/obs

# The seeded fault-injection suite: scripted connection failures at
# chosen loop clocks, recovery from coordinated checkpoints, and
# bitwise comparison against fault-free runs — under the race detector.
chaos:
	$(GO) test -race -run 'Chaos' ./internal/runtime ./internal/driver

# The long randomized chaos soak: MF and LDA under seeded random fault
# schedules mixing all seven fault kinds (sever, delay, corrupt,
# truncate, duplicate, reorder, and checkpoint-time loss), every
# schedule asserted bitwise-identical to its fault-free run. A bounded
# two-seed variant runs inside `test` and `chaos`; this target unlocks
# the full seed sweep.
soak:
	ORION_SOAK=1 $(GO) test -race -run 'ChaosSoak' -v ./internal/driver

# One iteration of every benchmark — catches bit-rotted benchmark code
# without paying for real measurement. internal/bench also carries the
# threshold tests over the committed BENCH_vm.json / BENCH_transport.json
# baselines (run under `test`), so VM and transport regressions fail
# `make check` twice over.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x \
		./internal/lang ./internal/dsm ./internal/runtime ./internal/bench

# End-to-end flight-recorder smoke: a 2-worker MF run over real TCP
# sockets with tracing, report export, and the flight log on, then
# orion-trace over the artifacts — analyze exits non-zero when the
# merged trace carries no spans or the report no loops.
trace-smoke:
	@dir="$$(mktemp -d)"; trap 'rm -rf "$$dir"' EXIT; \
	$(GO) run ./cmd/orion-run -engine dsl -app mf -workers 2 -passes 2 \
		-transport tcp -trace "$$dir/trace.json" \
		-report-json "$$dir/report.json" -flightrec "$$dir/flight.jsonl" && \
	$(GO) run ./cmd/orion-trace analyze -report "$$dir/report.json" "$$dir/trace.json" && \
	$(GO) run ./cmd/orion-trace top -n 5 "$$dir/trace.json" && \
	test -s "$$dir/flight.jsonl"

# Adaptive re-planning smoke: a synthetic straggler (worker 0 padded
# 200µs per iteration) must trip a mid-run recut that cuts the measured
# compute-skew index by >= 30% by the last boundary — orion-run exits
# non-zero otherwise.
adapt-smoke:
	$(GO) run ./cmd/orion-run -engine dsl -app mf -workers 3 -passes 5 \
		-adapt -adapt-skew 2 -skew-demo 200 -adapt-assert-drop 0.3

# Regenerate the committed interp-vs-compiled kernel baseline.
bench-baseline:
	ORION_BENCH_BASELINE=1 $(GO) test ./internal/lang -run TestWriteBenchBaseline -v

# Regenerate the committed observability-overhead baseline.
bench-obs:
	$(GO) run ./cmd/orion-bench -obs-json BENCH_obs.json

# Regenerate the committed loop-backend baseline (interp vs closure
# compiler vs bytecode VM). TestVMBaselineThresholds gates the result.
bench-vm:
	$(GO) run ./cmd/orion-bench -vm-json BENCH_vm.json

# Regenerate the committed rotation-transport baseline (gob blobs vs
# the raw codec over pooled buffers). TestTransportBaselineThresholds
# gates the result.
bench-transport:
	$(GO) run ./cmd/orion-bench -transport-json BENCH_transport.json

# Vet every shipped example program; unsafe.orion is expected to fail.
vet-examples:
	$(GO) run ./cmd/orion-vet examples/quickstart/mf.orion \
		examples/slr_prefetch/slr.orion examples/wavefront/stencil.orion \
		examples/lda_dsl/lda.orion examples/vet_demo/fixed.orion \
		examples/strided/interleave.orion examples/guarded/tile.orion
	! $(GO) run ./cmd/orion-vet examples/vet_demo/unsafe.orion

# Regenerate the committed golden plan artifacts (one per examples/
# program) after an intentional planning or serialization change.
golden-plans:
	ORION_UPDATE_GOLDEN=1 $(GO) test ./internal/plan -run TestGolden

# Gate: fail when the compiled plans drift from their committed goldens.
golden-plans-check:
	$(GO) test ./internal/plan -run TestGolden

# Short fuzzing sessions over the DSL front end, the plan-artifact
# decoders, the symbolic dependence tier (soundness vs the brute-force
# oracle), the three-way interp/closure/VM execution differential, and
# the wire-frame decoder (hostile header claims must condemn the link,
# never crash or over-allocate).
fuzz:
	$(GO) test ./internal/lang -fuzz 'FuzzParse$$' -fuzztime 30s
	$(GO) test ./internal/lang -fuzz FuzzParseProgram -fuzztime 30s
	$(GO) test ./internal/plan -fuzz FuzzDecodeArtifact -fuzztime 30s
	$(GO) test ./internal/dep -fuzz FuzzRangeAnalysis -fuzztime 30s
	$(GO) test ./internal/lang/vm -fuzz FuzzExecDifferential -fuzztime 30s
	$(GO) test ./internal/runtime -fuzz FuzzDecodeFrame -fuzztime 30s
