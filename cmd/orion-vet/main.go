// Command orion-vet vets Orion DSL program files without running them:
// it parses each file (preamble + '---' + loop), runs the full static
// diagnostics engine (internal/check) — front-end analysis, dependence
// vectors, plan selection, safety lints, strategy verdict — and prints
// positioned diagnostics with source carets:
//
//	$ orion-vet examples/vet_demo/unsafe.orion
//	examples/vet_demo/unsafe.orion:8:5: error[ORN201]: loop "loop" is not parallelizable: ...
//	    hist[b] = hist[b] + 1
//	    ^
//	  note: run the loop serially, or — if the conflicting updates commute — ...
//
// Flags:
//
//	-json      emit a machine-readable JSON report instead of text
//	-explain   also print the strategy-explanation trail per file
//	-plan art  also vet the serialized plan artifact at path art against
//	           each program: schema-version or content-hash drift is
//	           reported as ORN108 (stale cache detection)
//
// Exit status: 0 when no file has error diagnostics, 1 when at least
// one does, 2 on usage or I/O problems.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"orion/internal/check"
	"orion/internal/diag"
)

// fileReport is the per-file entry of the -json output.
type fileReport struct {
	File     string `json:"file"`
	Strategy string `json:"strategy,omitempty"`
	// Verdict classifies the strategy outcome: "proven" (the plan is
	// unconditionally safe), "guarded" (safe only under a synthesized
	// runtime guard, ORN203), or "refused" (not parallelizable,
	// ORN201). Empty when planning did not run.
	Verdict     string            `json:"verdict,omitempty"`
	Guard       string            `json:"guard,omitempty"`
	Diagnostics []diag.Diagnostic `json:"diagnostics"`
	Explanation []string          `json:"explanation,omitempty"`
}

// report is the whole -json document.
type report struct {
	Files    []fileReport `json:"files"`
	Errors   int          `json:"errors"`
	Warnings int          `json:"warnings"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON report")
	explain := flag.Bool("explain", false, "print the strategy-explanation trail")
	planPath := flag.String("plan", "", "vet the serialized plan `artifact` against each program (ORN108 on drift)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: orion-vet [-json] [-explain] [-plan artifact] file.orion...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var planBlob []byte
	if *planPath != "" {
		var err error
		planBlob, err = os.ReadFile(*planPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "orion-vet:", err)
			os.Exit(2)
		}
	}

	rep := report{Files: []fileReport{}}
	sources := map[string]string{}
	for _, path := range flag.Args() {
		b, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "orion-vet:", err)
			os.Exit(2)
		}
		src := string(b)
		sources[path] = src

		var res *check.Result
		if planBlob != nil {
			res = check.CheckArtifact(planBlob, *planPath, src, check.Options{File: path})
		} else {
			res = check.Source(src, check.Options{File: path})
		}
		fr := fileReport{File: path, Diagnostics: append([]diag.Diagnostic{}, res.Diags...)}
		if res.Plan != nil {
			fr.Strategy = res.Plan.Kind.String()
		}
		fr.Verdict = res.Verdict()
		if res.Guard != nil {
			fr.Guard = res.Guard.String()
		}
		if *explain {
			fr.Explanation = res.Explanation
		}
		rep.Files = append(rep.Files, fr)
		for _, d := range res.Diags {
			switch d.Severity {
			case diag.Error:
				rep.Errors++
			case diag.Warning:
				rep.Warnings++
			}
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "orion-vet:", err)
			os.Exit(2)
		}
	} else {
		for _, fr := range rep.Files {
			diag.Render(os.Stdout, fr.Diagnostics, sources)
			if len(fr.Explanation) > 0 {
				fmt.Printf("%s: strategy explanation:\n", fr.File)
				for _, line := range fr.Explanation {
					fmt.Println("  " + line)
				}
			}
		}
		if rep.Errors > 0 || rep.Warnings > 0 {
			fmt.Printf("orion-vet: %d error(s), %d warning(s)\n", rep.Errors, rep.Warnings)
		}
	}
	if rep.Errors > 0 {
		os.Exit(1)
	}
}
