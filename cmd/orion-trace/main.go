// Command orion-trace post-processes the flight recorder's artifacts:
// Chrome trace-event files written by orion-run -trace and report
// documents written by orion-run -report-json.
//
//	orion-trace merge -o merged.json run1.json run2.json
//	orion-trace analyze -report report.json [-weights weights.json] [trace.json]
//	orion-trace top -n 10 trace.json
//
// merge stitches several trace files into one timeline (remapping pid
// lanes so different runs do not collide), analyze runs the
// straggler/skew analytics engine over a report document (and
// optionally sanity-checks the trace beside it), and top aggregates
// span durations by name.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"orion/internal/obs"
	"orion/internal/obs/analyze"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "merge":
		err = cmdMerge(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "top":
		err = cmdTop(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "orion-trace: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "orion-trace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  orion-trace merge -o merged.json trace1.json [trace2.json ...]
  orion-trace analyze -report report.json [-weights out.json] [trace.json]
  orion-trace top [-n 10] trace.json
`)
}

// traceDoc is the Chrome trace-event JSON envelope.
type traceDoc struct {
	TraceEvents     []obs.TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string           `json:"displayTimeUnit"`
}

func readTrace(path string) (*traceDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc traceDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

// cmdMerge concatenates several trace files into one timeline. Each
// input keeps its internal pid structure but is shifted into its own
// pid range so two runs' worker lanes never collide; metadata events
// stay attached to their lanes.
func cmdMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	out := fs.String("o", "merged.json", "output trace file")
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("merge: no input traces")
	}

	merged := traceDoc{DisplayTimeUnit: "ms"}
	base := 0
	for _, path := range fs.Args() {
		doc, err := readTrace(path)
		if err != nil {
			return err
		}
		maxPid := 0
		for _, ev := range doc.TraceEvents {
			ev.Pid += base
			if ev.Pid > maxPid {
				maxPid = ev.Pid
			}
			merged.TraceEvents = append(merged.TraceEvents, ev)
		}
		base = maxPid + 1
	}
	obs.SortEvents(merged.TraceEvents)

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	if err := enc.Encode(&merged); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("merged %d events from %d traces into %s\n",
		len(merged.TraceEvents), fs.NArg(), *out)
	return nil
}

// cmdAnalyze runs the analytics engine over a report document and
// optionally cross-checks the merged trace beside it. Exits non-zero
// when the report has no loops or the trace carries no spans — an
// empty flight recording is a collection failure, not a healthy run.
func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	reportPath := fs.String("report", "", "report document from orion-run -report-json (required)")
	weightsOut := fs.String("weights", "", "export the measured weight profile of the most skewed loop here")
	skew := fs.Float64("skew", 0, "compute-skew threshold for ORN401 (default 1.5)")
	rotation := fs.Float64("rotation", 0, "rotation/compute threshold for ORN402 (default 0.5)")
	static := fs.Float64("static-ratio", 0, "ORN107's static rotation/compute byte ratio, for cross-checking")
	fs.Parse(args)
	if *reportPath == "" {
		return fmt.Errorf("analyze: -report is required")
	}

	doc, err := obs.ReadReportDoc(*reportPath)
	if err != nil {
		return err
	}
	if len(doc.Loops) == 0 {
		return fmt.Errorf("analyze: %s has no loop reports", *reportPath)
	}

	// Optional positional trace: verify it actually recorded spans and
	// summarize its lanes.
	if fs.NArg() > 0 {
		tdoc, err := readTrace(fs.Arg(0))
		if err != nil {
			return err
		}
		pids := analyze.Pids(tdoc.TraceEvents)
		if len(pids) == 0 {
			return fmt.Errorf("analyze: %s contains no complete spans", fs.Arg(0))
		}
		fmt.Printf("trace %s: %d events across %d worker lanes (pids %v)\n",
			fs.Arg(0), len(tdoc.TraceEvents), len(pids), pids)
	}

	opts := analyze.Options{SkewThreshold: *skew, RotationThreshold: *rotation, StaticRatio: *static}
	results := analyze.Report(doc, opts)

	var worst *analyze.Result
	for _, res := range results {
		printResult(res)
		if res.Straggler >= 0 && (worst == nil || res.SkewIndex > worst.SkewIndex) {
			worst = res
		}
	}
	if len(doc.Flight) > 0 {
		fmt.Printf("\nflight log: %d events (last kind %s at clock %d)\n",
			len(doc.Flight), doc.Flight[len(doc.Flight)-1].Kind, doc.Flight[len(doc.Flight)-1].Clock)
		printReconfigurations(doc.Flight)
	}

	if *weightsOut != "" {
		prof := pickWeights(worst, results)
		if prof == nil {
			return fmt.Errorf("analyze: no measured weights to export")
		}
		if err := prof.WriteFile(*weightsOut); err != nil {
			return err
		}
		fmt.Printf("weight profile for loop %s written to %s\n", prof.Loop, *weightsOut)
	}
	return nil
}

// printReconfigurations surfaces fleet-reconfiguration events from the
// flight log — adaptive recuts, elastic grows, checkpoint restores —
// keyed by (loop, clock, pass, step), so a stall visible in the merged
// timeline can be attributed to the reconfiguration that caused it.
func printReconfigurations(events []obs.FlightEvent) {
	var recon []obs.FlightEvent
	for _, ev := range events {
		switch ev.Kind {
		case "plan.recut", "fleet.grow", "fleet.shrink", "ckpt.restore":
			recon = append(recon, ev)
		}
	}
	if len(recon) == 0 {
		return
	}
	fmt.Printf("reconfigurations: %d\n", len(recon))
	for _, ev := range recon {
		fmt.Printf("  %-12s  loop %-24s  clock %-6d  pass %-4d step %-4d  %s\n",
			ev.Kind, ev.Loop, ev.Clock, ev.Pass, ev.Step, ev.Detail)
	}
}

// pickWeights picks the profile to export: the most skewed loop's when
// one exists, otherwise the first measured profile.
func pickWeights(worst *analyze.Result, all []*analyze.Result) *analyze.WeightProfile {
	if worst != nil && worst.Weights != nil {
		return worst.Weights
	}
	for _, res := range all {
		if res.Weights != nil {
			return res.Weights
		}
	}
	return nil
}

func printResult(res *analyze.Result) {
	fmt.Printf("loop %s: %d workers, skew %.2fx, rotation/compute %.2f\n",
		res.Loop, len(res.Workers), res.SkewIndex, res.RotationComputeRatio)
	if len(res.Workers) > 0 {
		fmt.Printf("  %-8s %-8s %-10s %-12s %-12s %-10s\n",
			"worker", "blocks", "iters", "compute", "rot-wait", "busy")
		for _, w := range res.Workers {
			fmt.Printf("  %-8d %-8d %-10d %-12s %-12s %-9.1f%%\n",
				w.Worker, w.Blocks, w.Iters, fmtNs(w.ComputeNs), fmtNs(w.RotWaitNs), 100*w.BusyShare)
		}
	}
	for _, l := range res.Links {
		fmt.Printf("  stall: worker %d waited %s on %s (%d bytes shipped)\n",
			l.Worker, fmtNs(l.RotWaitNs), l.Link, l.BytesSent)
	}
	for _, d := range res.Diags {
		fmt.Printf("  %s[%s]: %s\n", d.Severity, d.Code, d.Message)
		if d.Note != "" {
			fmt.Printf("    note: %s\n", d.Note)
		}
	}
}

func fmtNs(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// cmdTop prints the heaviest span names in a trace.
func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	n := fs.Int("n", 10, "show the top N span names by total duration")
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("top: no trace file")
	}
	doc, err := readTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	stats := analyze.Top(doc.TraceEvents)
	if len(stats) == 0 {
		return fmt.Errorf("top: %s contains no complete spans", fs.Arg(0))
	}
	if len(stats) > *n {
		stats = stats[:*n]
	}
	fmt.Printf("%-24s %-8s %-12s %-12s %-6s\n", "span", "count", "total", "max", "lanes")
	for _, s := range stats {
		fmt.Printf("%-24s %-8d %-12s %-12s %-6d\n",
			s.Name, s.Count, fmtNs(int64(s.TotalUs*1e3)), fmtNs(int64(s.MaxUs*1e3)), s.Lanes)
	}
	return nil
}
