// Command orion-analyze runs Orion's static parallelization pipeline on
// a DSL program and prints the Fig. 6 trail: the extracted loop
// information, the dependence vectors, and the chosen parallelization
// plan.
//
// Input format: a preamble declaring the DistArrays (and optional
// buffers / ordering), a '---' separator, then the loop source.
//
//	array ratings 100 80
//	array W 8 100
//	array H 8 80
//	---
//	for (key, rv) in ratings
//	    ...
//	end
//
// With no -file argument it analyzes the built-in SGD MF example.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"orion/internal/dep"
	"orion/internal/lang"
	"orion/internal/sched"
)

const builtinSLR = `array samples 50000
array weights 20000
buffer w_buf weights
---
for (key, v) in samples
    idx = floor(v * 20000) + 1
    w = weights[idx]
    g = sigmoid(w * v) - 1
    w_buf[idx] += 0 - step_size * g
end
`

const builtinStencil = `array grid 64 64
array A 64 64
ordered true
---
for (key, v) in grid
    cur = A[key[1], key[2]]
    west = A[key[1], key[2] - 1]
    ne = A[key[1] - 1, key[2] + 1]
    A[key[1], key[2]] = 0.4 * cur + 0.35 * west + 0.25 * ne
end
`

const builtinMF = `array ratings 9000 4000
array W 32 9000
array H 32 4000
---
for (key, rv) in ratings
    W_row = W[:, key[1]]
    H_row = H[:, key[2]]
    pred = dot(W_row, H_row)
    diff = rv - pred
    W_grad = -2 * diff * H_row
    H_grad = -2 * diff * W_row
    W[:, key[1]] = W_row - step_size * W_grad
    H[:, key[2]] = H_row - step_size * H_grad
end
`

func main() {
	file := flag.String("file", "", "program file (preamble --- loop)")
	example := flag.String("example", "mf", "built-in example when no -file: mf | slr | stencil")
	flag.Parse()

	var src string
	switch {
	case *file != "":
		b, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		src = string(b)
	case *example == "mf":
		src = builtinMF
	case *example == "slr":
		src = builtinSLR
	case *example == "stencil":
		src = builtinStencil
	default:
		fatal(fmt.Errorf("unknown example %q", *example))
	}

	env, loopSrc, err := parseInput(src)
	if err != nil {
		fatal(err)
	}
	loop, err := lang.Parse(loopSrc)
	if err != nil {
		fatal(err)
	}
	spec, err := lang.Analyze(loop, env)
	if err != nil {
		fatal(err)
	}
	fmt.Println("--- Loop information (static analysis) ---")
	fmt.Print(spec)

	deps, err := dep.Analyze(spec)
	if err != nil {
		fatal(err)
	}
	fmt.Println("\n--- Dependence vectors ---")
	fmt.Println(deps)

	opts := sched.DefaultOptions()
	opts.ArrayBytes = map[string]int64{}
	for name, dims := range env.Arrays {
		total := int64(8)
		for _, d := range dims {
			total *= d
		}
		opts.ArrayBytes[name] = total
	}
	plan, err := sched.NewFromDeps(spec, deps, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Println("\n--- Parallelization plan ---")
	fmt.Print(plan)

	// For parameter-server-served arrays, show the synthesized
	// bulk-prefetch function (Section 4.4).
	var served []string
	for _, ap := range plan.Arrays {
		if ap.Place == sched.Served && ap.Array != spec.IterSpaceArray {
			served = append(served, ap.Array)
		}
	}
	if len(served) > 0 {
		sliced, skipped, err := lang.PrefetchSlice(loop, env, served...)
		if err == nil {
			fmt.Println("\n--- Synthesized prefetch function ---")
			fmt.Println(sliced)
			if len(skipped) > 0 {
				fmt.Println("left on-demand (data-dependent subscripts):", skipped)
			}
		}
	}
}

func parseInput(src string) (*lang.Env, string, error) {
	parts := strings.SplitN(src, "---", 2)
	if len(parts) != 2 {
		return nil, "", fmt.Errorf("missing '---' separator between declarations and loop")
	}
	env := &lang.Env{Arrays: map[string][]int64{}, Buffers: map[string]string{}}
	for lineNo, line := range strings.Split(parts[0], "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "array":
			if len(fields) < 3 {
				return nil, "", fmt.Errorf("line %d: array needs a name and extents", lineNo+1)
			}
			dims := make([]int64, 0, len(fields)-2)
			for _, f := range fields[2:] {
				v, err := strconv.ParseInt(f, 10, 64)
				if err != nil {
					return nil, "", fmt.Errorf("line %d: bad extent %q", lineNo+1, f)
				}
				dims = append(dims, v)
			}
			env.Arrays[fields[1]] = dims
		case "buffer":
			if len(fields) != 3 {
				return nil, "", fmt.Errorf("line %d: buffer needs a name and target array", lineNo+1)
			}
			env.Buffers[fields[1]] = fields[2]
		case "ordered":
			env.Ordered = len(fields) > 1 && fields[1] == "true"
		default:
			return nil, "", fmt.Errorf("line %d: unknown declaration %q", lineNo+1, fields[0])
		}
	}
	return env, parts[1], nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "orion-analyze:", err)
	os.Exit(1)
}
