// Command orion-analyze runs Orion's static parallelization pipeline on
// a DSL program and prints the Fig. 6 trail: the extracted loop
// information, the dependence vectors, and the chosen parallelization
// plan.
//
// Input format: a preamble declaring the DistArrays (and optional
// buffers / ordering), a '---' separator, then the loop source.
//
//	array ratings 100 80
//	array W 8 100
//	array H 8 80
//	---
//	for (key, rv) in ratings
//	    ...
//	end
//
// With no -file argument it analyzes the built-in SGD MF example.
package main

import (
	"flag"
	"fmt"
	"os"

	"orion/internal/check"
	"orion/internal/diag"
	"orion/internal/lang"
	"orion/internal/sched"
)

const builtinSLR = `array samples 50000
array weights 20000
buffer w_buf weights
---
for (key, v) in samples
    idx = floor(v * 20000) + 1
    w = weights[idx]
    g = sigmoid(w * v) - 1
    w_buf[idx] += 0 - step_size * g
end
`

const builtinStencil = `array grid 64 64
array A 64 64
ordered true
---
for (key, v) in grid
    cur = A[key[1], key[2]]
    west = A[key[1], key[2] - 1]
    ne = A[key[1] - 1, key[2] + 1]
    A[key[1], key[2]] = 0.4 * cur + 0.35 * west + 0.25 * ne
end
`

const builtinMF = `array ratings 9000 4000
array W 32 9000
array H 32 4000
---
for (key, rv) in ratings
    W_row = W[:, key[1]]
    H_row = H[:, key[2]]
    pred = dot(W_row, H_row)
    diff = rv - pred
    W_grad = -2 * diff * H_row
    H_grad = -2 * diff * W_row
    W[:, key[1]] = W_row - step_size * W_grad
    H[:, key[2]] = H_row - step_size * H_grad
end
`

func main() {
	file := flag.String("file", "", "program file (preamble --- loop)")
	example := flag.String("example", "mf", "built-in example when no -file: mf | slr | stencil")
	flag.Parse()

	var src string
	switch {
	case *file != "":
		b, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		src = string(b)
	case *example == "mf":
		src = builtinMF
	case *example == "slr":
		src = builtinSLR
	case *example == "stencil":
		src = builtinStencil
	default:
		fatal(fmt.Errorf("unknown example %q", *example))
	}

	// The static diagnostics engine runs the whole pipeline — parse,
	// analysis, dependence vectors, plan, lints — in one call.
	name := *file
	if name == "" {
		name = "example-" + *example
	}
	res := check.Source(src, check.Options{File: name})
	if res.Err() != nil {
		fmt.Fprint(os.Stderr, diag.RenderString(res.Diags, map[string]string{name: src}))
		os.Exit(1)
	}
	spec, plan := res.Spec, res.Plan

	fmt.Println("--- Loop information (static analysis) ---")
	fmt.Print(spec)

	fmt.Println("\n--- Dependence vectors ---")
	fmt.Println(res.Deps())

	fmt.Println("\n--- Parallelization plan ---")
	fmt.Print(plan)

	fmt.Println("\n--- Strategy explanation ---")
	for _, line := range res.Explanation {
		fmt.Println(line)
	}

	// Non-fatal lints (assumed commutativity, runtime subscripts, ...).
	if res.Diags.Count(diag.Warning) > 0 || res.Diags.Count(diag.Info) > 0 {
		fmt.Println("\n--- Diagnostics ---")
		fmt.Print(diag.RenderString(res.Diags, map[string]string{name: src}))
	}

	// For parameter-server-served arrays, show the synthesized
	// bulk-prefetch function (Section 4.4).
	var served []string
	for _, ap := range plan.Arrays {
		if ap.Place == sched.Served && ap.Array != spec.IterSpaceArray {
			served = append(served, ap.Array)
		}
	}
	if len(served) > 0 {
		sliced, skipped, err := lang.PrefetchSlice(res.Program.Loop, res.Program.Env, served...)
		if err == nil {
			fmt.Println("\n--- Synthesized prefetch function ---")
			fmt.Println(sliced)
			if len(skipped) > 0 {
				fmt.Println("left on-demand (data-dependent subscripts):", skipped)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "orion-analyze:", err)
	os.Exit(1)
}
