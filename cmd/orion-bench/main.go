// Command orion-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	orion-bench -list
//	orion-bench -exp fig9b
//	orion-bench -exp all -scale small
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"orion/internal/bench"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		scale  = flag.String("scale", "default", "dataset scale: small | default")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		outDir = flag.String("csv", "", "also write each experiment's series as CSV files into this directory")
		obsOut = flag.String("obs-json", "", "measure observability overhead, write the BENCH_obs.json baseline to this path, and exit")
		vmOut  = flag.String("vm-json", "", "measure the loop backends, write the BENCH_vm.json baseline to this path, and exit")
		trOut  = flag.String("transport-json", "", "measure the rotation transport, write the BENCH_transport.json baseline to this path, and exit")
	)
	flag.Parse()

	if *obsOut != "" {
		if err := bench.WriteObsBaseline(*obsOut); err != nil {
			fmt.Fprintf(os.Stderr, "obs baseline: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *obsOut)
		return
	}
	if *vmOut != "" {
		if err := bench.WriteVMBaseline(*vmOut); err != nil {
			fmt.Fprintf(os.Stderr, "vm baseline: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *vmOut)
		return
	}
	if *trOut != "" {
		if err := bench.WriteTransportBaseline(*trOut); err != nil {
			fmt.Fprintf(os.Stderr, "transport baseline: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *trOut)
		return
	}

	if *list {
		for _, id := range bench.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}

	var s bench.Scale
	switch *scale {
	case "small":
		s = bench.Small()
	case "default":
		s = bench.Default()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want small or default)\n", *scale)
		os.Exit(2)
	}

	reg := bench.Experiments()
	var ids []string
	if *exp == "all" {
		ids = bench.ExperimentIDs()
	} else {
		if _, ok := reg[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			os.Exit(2)
		}
		ids = []string{*exp}
	}

	failed := false
	for _, id := range ids {
		start := time.Now()
		rep, err := reg[id](s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			failed = true
			continue
		}
		fmt.Println(rep)
		fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
		if *outDir != "" {
			if err := writeCSV(*outDir, rep); err != nil {
				fmt.Fprintf(os.Stderr, "%s: writing csv: %v\n", id, err)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

// writeCSV dumps each series of a report as <id>__<series>.csv with
// x,y rows, for plotting the figures externally.
func writeCSV(dir string, rep *bench.Report) error {
	if len(rep.Series) == 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, s := range rep.Series {
		var b strings.Builder
		b.WriteString("x,y\n")
		for i := range s.X {
			fmt.Fprintf(&b, "%g,%g\n", s.X[i], s.Y[i])
		}
		name := rep.ID + "__" + sanitize(s.Name) + ".csv"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(b.String()), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			out = append(out, r)
		case r == ' ':
			out = append(out, '_')
		}
	}
	return string(out)
}
