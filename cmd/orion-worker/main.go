// Command orion-worker is a generic Orion executor process: it connects
// to a driver's master over TCP, receives DistArray partitions and
// DefineLoop messages, compiles shipped DSL loop bodies with the
// built-in interpreter, and executes blocks until shut down. Because
// loop code travels in the DefineLoop message, one worker binary serves
// every application.
//
//	orion-worker -master HOST:PORT -peer HOST:PORT -id N
package main

import (
	"flag"
	"fmt"
	"os"

	"orion/internal/dslkernel"
	"orion/internal/obs"
	"orion/internal/runtime"
)

func main() {
	var (
		master  = flag.String("master", "", "master address (host:port)")
		peer    = flag.String("peer", "", "this worker's ring endpoint (host:port)")
		id      = flag.Int("id", -1, "executor id (0..n-1, unique per worker)")
		metrics = flag.String("metrics-addr", "", "serve runtime metrics (/debug/vars) and profiling (/debug/pprof/) on this address")
	)
	flag.Parse()
	if *master == "" || *peer == "" || *id < 0 {
		fmt.Fprintln(os.Stderr, "orion-worker: -master, -peer and -id are required")
		os.Exit(2)
	}
	if *metrics != "" {
		addr, err := obs.ServeMetrics(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "orion-worker:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "orion-worker: metrics at http://%s/debug/vars\n", addr)
	}
	dslkernel.Install()
	e, err := runtime.NewExecutor(runtime.TCP{}, *master, *peer, *id)
	if err != nil {
		fmt.Fprintln(os.Stderr, "orion-worker:", err)
		os.Exit(1)
	}
	if err := <-e.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "orion-worker:", err)
		os.Exit(1)
	}
}
