// Command orion-worker is a generic Orion executor process: it connects
// to a driver's master over TCP, receives DistArray partitions and
// DefineLoop messages, compiles shipped DSL loop bodies with the
// built-in interpreter, and executes blocks until shut down. Because
// loop code travels in the DefineLoop message, one worker binary serves
// every application.
//
//	orion-worker -master HOST:PORT -peer HOST:PORT [-id N] [-rejoin]
//
// The id is optional: without one the master assigns a free slot. Dial
// failures retry with exponential backoff and jitter, so workers can
// start before (or survive a restart of) the master. With -rejoin a
// worker whose master connection drops reconnects and re-registers —
// the worker half of the runtime's recovery protocol.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"orion/internal/dslkernel"
	"orion/internal/obs"
	"orion/internal/runtime"
)

// dialRetry tunes the connect/re-register backoff: attempts are spaced
// base, 2*base, 4*base, ... capped at max, each with ±25% jitter so a
// fleet of workers restarted together does not reconnect in lockstep.
const (
	dialBase     = 100 * time.Millisecond
	dialMax      = 3 * time.Second
	dialAttempts = 8
)

// connect builds the executor, retrying the master dial with
// exponential backoff + jitter.
func connect(tr runtime.Transport, master, peer string, id int, rng *rand.Rand) (*runtime.Executor, error) {
	delay := dialBase
	var lastErr error
	for attempt := 0; attempt < dialAttempts; attempt++ {
		e, err := runtime.NewExecutor(tr, master, peer, id)
		if err == nil {
			return e, nil
		}
		lastErr = err
		jitter := time.Duration(float64(delay) * (0.75 + 0.5*rng.Float64()))
		fmt.Fprintf(os.Stderr, "orion-worker: connect attempt %d failed (%v); retrying in %v\n", attempt+1, err, jitter)
		time.Sleep(jitter)
		if delay *= 2; delay > dialMax {
			delay = dialMax
		}
	}
	return nil, fmt.Errorf("orion-worker: giving up after %d attempts: %w", dialAttempts, lastErr)
}

func main() {
	var (
		master    = flag.String("master", "", "master address (host:port)")
		peer      = flag.String("peer", "", "this worker's ring endpoint (host:port; use :0 for an ephemeral port)")
		id        = flag.Int("id", -1, "executor id (0..n-1); -1 lets the master assign one")
		rejoin    = flag.Bool("rejoin", false, "reconnect and re-register when the master connection drops (recovery)")
		rejoinTO  = flag.Duration("rejoin-timeout", 0, "give up rejoining this long after the connection drop (0 keeps trying forever)")
		ioTimeout = flag.Duration("io-timeout", 0, "per-write network deadline (0 disables); turns a wedged peer into a prompt error")
		heartbeat = flag.Duration("heartbeat", 0, "master ping interval override (0 keeps the master-assigned 500ms; pair with the driver's staleness bound)")
		metrics   = flag.String("metrics-addr", "", "serve runtime metrics (/debug/vars) and profiling (/debug/pprof/) on this address")
	)
	flag.Parse()
	if *master == "" || *peer == "" {
		fmt.Fprintln(os.Stderr, "orion-worker: -master and -peer are required")
		os.Exit(2)
	}
	if *metrics != "" {
		srv, err := obs.ServeMetrics(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "orion-worker:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "orion-worker: metrics at http://%s/debug/vars (report at /report)\n", srv.Addr())
	}
	dslkernel.Install()
	var tr runtime.Transport = runtime.TCP{}
	if *ioTimeout > 0 {
		tr = runtime.Deadline{Inner: tr, Write: *ioTimeout}
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	// Rejoin state: the pause before re-registering doubles on every
	// consecutive failed cycle (capped at dialMax) and resets once a
	// session actually registers and runs; the -rejoin-timeout window is
	// measured from the most recent loss.
	rejoinDelay := dialBase
	var lostAt time.Time
	for {
		e, err := connect(tr, *master, *peer, *id, rng)
		if err != nil {
			fmt.Fprintln(os.Stderr, "orion-worker:", err)
			os.Exit(1)
		}
		if *heartbeat > 0 {
			e.SetPingInterval(*heartbeat)
		}
		sessionStart := time.Now()
		err = <-e.Start()
		if err == nil {
			return // clean shutdown handshake
		}
		if !*rejoin {
			fmt.Fprintln(os.Stderr, "orion-worker:", err)
			os.Exit(1)
		}
		// A session that outlived the backoff cap registered and did
		// work, so this loss is a fresh incident: backoff and the
		// rejoin window both start over.
		if lostAt.IsZero() || time.Since(sessionStart) > dialMax {
			lostAt = time.Now()
			rejoinDelay = dialBase
		}
		if *rejoinTO > 0 && time.Since(lostAt) > *rejoinTO {
			fmt.Fprintf(os.Stderr, "orion-worker: master connection lost (%v); rejoin window %v exhausted\n", err, *rejoinTO)
			os.Exit(1)
		}
		// A lost master mid-loop: the master may be re-forming the
		// fleet — re-register (the master assigns our slot) after a
		// jittered exponential pause so survivors neither stampede the
		// fresh listener nor hammer a master that stays down.
		jitter := time.Duration(float64(rejoinDelay) * (0.75 + 0.5*rng.Float64()))
		fmt.Fprintf(os.Stderr, "orion-worker: master connection lost (%v); rejoining in %v\n", err, jitter)
		time.Sleep(jitter)
		if rejoinDelay *= 2; rejoinDelay > dialMax {
			rejoinDelay = dialMax
		}
		*id = -1 // our old slot may be renumbered; let the master assign
	}
}
