// Command orion-lint runs Orion's project-specific static analysis
// suite (internal/lint) over the repository — invariants go vet cannot
// know about:
//
//	timenow   — no wall-clock reads in deterministic packages
//	spanend   — every trace span Begin() is ended on all return paths
//	msgretain — runtime Msg payload slices are never retained
//
// Usage:
//
//	orion-lint [packages]
//
// Packages are directory patterns relative to the module root
// ("./...", "./internal/runtime"); the default is the whole module.
// Suppress a finding with `//lint:ignore <analyzer> <reason>` on the
// flagged line or the line above it.
//
// Exit status: 0 clean, 1 findings, 2 usage or parse problems.
package main

import (
	"flag"
	"fmt"
	"os"

	"orion/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: orion-lint [packages]\n")
		fmt.Fprintf(flag.CommandLine.Output(), "analyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	root, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "orion-lint:", err)
		os.Exit(2)
	}
	passes, err := lint.Load(root, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "orion-lint:", err)
		os.Exit(2)
	}
	findings := lint.Run(passes, lint.Analyzers())
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "orion-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
