// Command orion-plan compiles, inspects, and compares Orion plan
// artifacts — the serialized output of the static parallelization
// pipeline (internal/plan).
//
// Subcommands:
//
//	orion-plan compile [-workers N] [-binary] [-o out] prog.orion
//	    Run the static pipeline over the program and write the plan
//	    artifact (JSON by default, the compact binary encoding with
//	    -binary) to out or stdout.
//
//	orion-plan show <artifact | prog.orion>
//	    Print a human-readable description of an artifact. A .orion
//	    argument is compiled on the fly; anything else is decoded as a
//	    serialized artifact (JSON or binary).
//
//	orion-plan diff <a> <b>
//	    Compare two artifacts (each argument resolved like show) and
//	    print the field-level delta. Exit 0 when the plans are
//	    identical, 1 when they differ, 2 on error.
//
// Exit status: 0 on success, 1 when diff finds differences (or compile
// hits program errors), 2 on usage or I/O problems.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"orion/internal/check"
	"orion/internal/diag"
	"orion/internal/plan"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "compile":
		os.Exit(cmdCompile(os.Args[2:]))
	case "show":
		os.Exit(cmdShow(os.Args[2:]))
	case "diff":
		os.Exit(cmdDiff(os.Args[2:]))
	case "-h", "-help", "--help", "help":
		usage()
		os.Exit(0)
	default:
		fmt.Fprintf(os.Stderr, "orion-plan: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  orion-plan compile [-workers N] [-binary] [-o out] prog.orion
  orion-plan show <artifact | prog.orion>
  orion-plan diff <a> <b>
`)
}

func cmdCompile(args []string) int {
	fs := flag.NewFlagSet("compile", flag.ExitOnError)
	workers := fs.Int("workers", 4, "worker count the plan is materialized for")
	binary := fs.Bool("binary", false, "write the compact binary encoding instead of JSON")
	out := fs.String("o", "", "output `file` (default stdout)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "orion-plan compile: exactly one program file expected")
		return 2
	}

	art, code := compileProgram(fs.Arg(0), *workers)
	if art == nil {
		return code
	}
	var blob []byte
	if *binary {
		blob = art.EncodeBinary()
	} else {
		var err error
		blob, err = art.EncodeJSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "orion-plan:", err)
			return 2
		}
	}
	if *out == "" {
		os.Stdout.Write(blob)
		return 0
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "orion-plan:", err)
		return 2
	}
	return 0
}

func cmdShow(args []string) int {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	workers := fs.Int("workers", 4, "worker count when compiling a .orion program on the fly")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "orion-plan show: exactly one artifact or program file expected")
		return 2
	}
	art, code := resolveArtifact(fs.Arg(0), *workers)
	if art == nil {
		return code
	}
	fmt.Print(art.Describe())
	return 0
}

func cmdDiff(args []string) int {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	workers := fs.Int("workers", 4, "worker count when compiling .orion programs on the fly")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "orion-plan diff: exactly two artifact or program files expected")
		return 2
	}
	a, code := resolveArtifact(fs.Arg(0), *workers)
	if a == nil {
		return code
	}
	b, code := resolveArtifact(fs.Arg(1), *workers)
	if b == nil {
		return code
	}
	lines := plan.Diff(a, b)
	if len(lines) == 0 {
		fmt.Printf("plans are identical (%s, hash %.12s)\n", a.Strategy, a.ContentHash)
		return 0
	}
	fmt.Printf("--- %s\n+++ %s\n", fs.Arg(0), fs.Arg(1))
	for _, line := range lines {
		fmt.Println(line)
	}
	return 1
}

// resolveArtifact turns a CLI argument into an artifact: .orion files
// are compiled on the fly; everything else is read and decoded as a
// serialized artifact (JSON or binary sniffed by plan.Decode).
func resolveArtifact(path string, workers int) (*plan.Artifact, int) {
	if strings.HasSuffix(path, ".orion") {
		return compileProgram(path, workers)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "orion-plan:", err)
		return nil, 2
	}
	art, err := plan.Decode(blob)
	if err != nil {
		fmt.Fprintf(os.Stderr, "orion-plan: %s: %v\n", path, err)
		return nil, 2
	}
	return art, 0
}

// compileProgram runs the static pipeline over a .orion program and
// materializes its plan artifact. Diagnostics are rendered to stderr;
// error diagnostics abort with exit code 1.
func compileProgram(path string, workers int) (*plan.Artifact, int) {
	b, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "orion-plan:", err)
		return nil, 2
	}
	src := string(b)
	res := check.Source(src, check.Options{File: path})
	if res.Diags.HasErrors() {
		diag.Render(os.Stderr, res.Diags, map[string]string{path: src})
		return nil, 1
	}
	art, err := res.BuildArtifact(workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "orion-plan:", err)
		return nil, 1
	}
	return art, 0
}
