package main

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"orion/internal/runtime"
)

// A worker dying mid-loop must surface as a positioned ORN301
// diagnostic plus a non-nil (→ non-zero exit) error, never as a
// successful run over partial results.
func TestRenderWorkerLostDiagnostic(t *testing.T) {
	lost := fmt.Errorf("runtime: executor 1 connection failed (EOF): %w", runtime.ErrWorkerLost)
	var buf bytes.Buffer
	err := renderWorkerLost(&buf, "mf", mfDSL, lost)
	if err == nil {
		t.Fatal("renderWorkerLost returned nil for a lost worker")
	}
	if !errors.Is(err, runtime.ErrWorkerLost) {
		t.Fatalf("returned error %v does not wrap ErrWorkerLost", err)
	}
	out := buf.String()
	if !strings.Contains(out, "ORN301") {
		t.Fatalf("diagnostic output missing ORN301:\n%s", out)
	}
	if !strings.Contains(out, "mf.dsl:2") {
		t.Fatalf("diagnostic not positioned at the loop header (mf.dsl:2):\n%s", out)
	}
	if !strings.Contains(out, "for (key, rv) in ratings") {
		t.Fatalf("diagnostic missing the source context line:\n%s", out)
	}
}

// Unrelated ParallelFor errors must pass through untouched and render
// nothing.
func TestRenderWorkerLostPassthrough(t *testing.T) {
	plain := errors.New("some planning failure")
	var buf bytes.Buffer
	if err := renderWorkerLost(&buf, "mf", mfDSL, plain); err != plain {
		t.Fatalf("non-worker-lost error rewritten: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("unexpected diagnostic output: %s", buf.String())
	}
}
