// Command orion-run trains one application end-to-end under a chosen
// execution engine on a synthetic dataset and prints the loss
// trajectory.
//
//	orion-run -app mf -engine orion -workers 16 -passes 10
//	orion-run -app lda -engine strads
//	orion-run -app slr -engine dp
package main

import (
	"flag"
	"fmt"
	"os"

	"orion/internal/apps"
	"orion/internal/bench"
	"orion/internal/data"
	"orion/internal/engine"
	"orion/internal/obs"
	"orion/internal/optim"
)

func main() {
	var (
		app        = flag.String("app", "mf", "application: mf | mf-adarev | lda | slr | stencil | gbt")
		eng        = flag.String("engine", "orion", "engine: serial | orion | ordered | dp | cm | strads | dataflow | dsl")
		workers    = flag.Int("workers", 0, "worker count (default: scale's)")
		passes     = flag.Int("passes", 0, "data passes (default: scale's)")
		scale      = flag.String("scale", "default", "dataset scale: small | default")
		backend    = flag.String("backend", "", "loop backend for -engine dsl: vm | compiled | interp (default: vm, falling back to compiled, then the interpreter)")
		transport  = flag.String("transport", "inproc", "runtime transport for -engine dsl: inproc | tcp (tcp exercises real sockets)")
		trace      = flag.String("trace", "", "write a Chrome trace-event JSON file here (-engine dsl; open at ui.perfetto.dev)")
		report     = flag.Bool("report", false, "print the per-worker execution report after the run (-engine dsl)")
		reportJSON = flag.String("report-json", "", "write the machine-readable report document (loops, peer traffic, flight log) here (-engine dsl)")
		flightRec  = flag.String("flightrec", "", "flush the flight-recorder event log here on exit, even after a failed run (-engine dsl)")
		metrics    = flag.String("metrics-addr", "", "serve runtime metrics (/debug/vars) and profiling (/debug/pprof/) on this address")

		ckptDir   = flag.String("checkpoint-dir", "", "coordinated checkpoint directory (-engine dsl); enables recovery from worker loss")
		ckptEvery = flag.Int64("checkpoint-every", 0, "checkpoint every N global steps (0 = pass boundaries only; needs -checkpoint-dir)")

		adapt      = flag.Bool("adapt", false, "adaptive re-planning: re-cut partitions from measured cost at skewed pass boundaries (-engine dsl)")
		adaptSkew  = flag.Float64("adapt-skew", 0, "compute skew (max/median) that triggers a recut (0 = analyzer default 1.5; needs -adapt)")
		skewDemo   = flag.Float64("skew-demo", 0, "inject a synthetic straggler: delay worker 0 this many microseconds per iteration (-engine dsl)")
		assertDrop = flag.Float64("adapt-assert-drop", 0, "exit non-zero unless an adaptive recut cut the skew index by at least this fraction (e.g. 0.3)")
		grow       = flag.Int("grow", 0, "grow the fleet to this many workers at the first pass boundary (-engine dsl)")
		heartbeat  = flag.Duration("heartbeat", 0, "declare a silent worker lost after this long (-engine dsl; 0 disables staleness detection; use >= 3x the 500ms ping interval)")
	)
	flag.Parse()

	if *metrics != "" {
		srv, err := obs.ServeMetrics(*metrics)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "orion-run: metrics at http://%s/debug/vars (report at /report)\n", srv.Addr())
	}

	// -engine dsl runs the app from pure DSL source on the real
	// distributed runtime (not the cost-model engines below).
	if *eng == "dsl" {
		var tracer *obs.Tracer
		if *trace != "" {
			tracer = obs.StartTracing()
		}
		// Flush the flight log even when the run fails or panics — the
		// last events before an abort are the ones worth reading.
		flushFlight := func() {
			if *flightRec == "" {
				return
			}
			if ferr := obs.Flight().FlushFile(*flightRec); ferr == nil {
				fmt.Fprintf(os.Stderr, "orion-run: flight log written to %s\n", *flightRec)
			}
		}
		defer flushFlight()
		err := runDSL(dslConfig{
			App: *app, Backend: *backend, Transport: *transport,
			Workers: *workers, Passes: *passes,
			Report: *report, ReportJSON: *reportJSON,
			CkptDir: *ckptDir, CkptEvery: *ckptEvery,
			Adapt: *adapt, AdaptSkew: *adaptSkew, SkewDemoUS: *skewDemo,
			AssertDrop: *assertDrop, Grow: *grow,
			Heartbeat: *heartbeat,
		})
		if tracer != nil {
			obs.StopTracing()
			// Write the trace even when the run failed — a truncated
			// timeline is exactly what diagnoses the failure.
			if werr := tracer.WriteFile(*trace); werr != nil {
				if err == nil {
					err = werr
				}
			} else {
				fmt.Fprintf(os.Stderr, "orion-run: trace written to %s\n", *trace)
			}
		}
		if err != nil {
			flushFlight() // fatal exits without running defers
			fatal(err)
		}
		return
	}

	var s bench.Scale
	switch *scale {
	case "small":
		s = bench.Small()
	case "default":
		s = bench.Default()
	default:
		fatal(fmt.Errorf("unknown scale %q", *scale))
	}

	var a engine.App
	defPasses := s.MFPasses
	switch *app {
	case "mf":
		a = bench.MFApp(s, optim.NewSGD(s.MFLR))
	case "mf-adarev":
		a = bench.MFApp(s, optim.NewAdaRev(s.AdaRevLR))
	case "lda":
		a = bench.LDAApp(s.LDASmall, s)
		defPasses = s.LDAPasses
	case "slr":
		a = bench.SLRApp(s, optim.NewSGD(s.SLRLR))
		defPasses = s.SLRPasses
	case "stencil":
		a = apps.NewStencil(48, 48)
		defPasses = 6
	case "gbt":
		runGBT(s)
		return
	default:
		fatal(fmt.Errorf("unknown app %q", *app))
	}

	cfg := engine.Config{
		Workers:       s.Workers,
		Cluster:       s.Cluster,
		Passes:        defPasses,
		Seed:          1,
		PipelineDepth: 2,
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *passes > 0 {
		cfg.Passes = *passes
	}

	var (
		res *engine.Result
		err error
	)
	switch *eng {
	case "serial":
		cfg.Workers = 1
		res = engine.RunSerial(a, cfg)
	case "orion":
		res, _, err = engine.RunOrion(a, cfg)
	case "ordered":
		res, err = engine.RunOrion2D(a, cfg, true)
	case "dp":
		res = engine.RunDataParallel(a, cfg)
	case "cm":
		res = engine.RunManagedComm(a, cfg)
	case "strads":
		res, err = engine.RunSTRADS(a, cfg)
	case "dataflow":
		res = engine.RunDataflow(a, cfg)
	default:
		fatal(fmt.Errorf("unknown engine %q", *eng))
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%s on %s: %d workers, %d passes\n", res.Engine, res.App, cfg.Workers, cfg.Passes)
	fmt.Printf("%-6s  %-12s  %-12s\n", "pass", "loss", "time (s)")
	for i := range res.Loss {
		fmt.Printf("%-6d  %-12.6g  %-12.6g\n", i+1, res.Loss[i], res.Time[i])
	}
	fmt.Printf("time per iteration: %.6g s (simulated)\n", res.TimePerIter())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "orion-run:", err)
	os.Exit(1)
}

// runGBT trains gradient boosted trees through their own driver (GBT is
// not a parameter-server workload; its 1D-parallel loop is the split
// search, run with real goroutines).
func runGBT(s bench.Scale) {
	ds := data.NewRegression(s.GBT)
	g := apps.NewGBT(ds, 40, 4, 32, 0.3)
	g.Train()
	fmt.Printf("gbt: %d trees, depth 4, training MSE %.6g\n", 40, g.MSE())
}
