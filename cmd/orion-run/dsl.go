package main

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"time"

	"orion/internal/check"
	"orion/internal/data"
	"orion/internal/diag"
	"orion/internal/driver"
	"orion/internal/dsm"
	"orion/internal/lang"
	"orion/internal/obs"
	"orion/internal/runtime"
)

// DSL renditions of the three parameter-server applications (the same
// loop bodies shipped in examples/). No Go kernels: the driver
// analyzes, plans, and ships each body to the executors, which run it
// on the selected backend.
const (
	mfDSL = `
for (key, rv) in ratings
    W_row = W[:, key[1]]
    H_row = H[:, key[2]]
    pred = dot(W_row, H_row)
    diff = rv - pred
    W_grad = -2 * diff * H_row
    H_grad = -2 * diff * W_row
    W[:, key[1]] = W_row - step_size * W_grad
    H[:, key[2]] = H_row - step_size * H_grad
    err += abs2(diff)
end
`
	ldaDSL = `
for (key, occ) in tokens
    zi = z[key[1], key[2]]
    doc_topic[zi, key[1]] -= 1
    word_topic[zi, key[2]] -= 1
    tot_buf[zi] -= 1

    p = zeros(K)
    total = 0
    for k = 1:K
        nd = max(doc_topic[k, key[1]], 0)
        nw = max(word_topic[k, key[2]], 0)
        nt = max(totals[k], 1)
        p[k] = (nd + alpha) * (nw + beta) / (nt + vbeta)
        total = total + p[k]
    end

    u = rand() * total
    chosen = 0
    acc = 0
    for k = 1:K
        acc = acc + p[k]
        if chosen == 0
            if u <= acc
                chosen = k
            end
        end
    end
    if chosen == 0
        chosen = K
    end

    doc_topic[chosen, key[1]] += 1
    word_topic[chosen, key[2]] += 1
    tot_buf[chosen] += 1
    z[key[1], key[2]] = chosen
end
`
	slrDSL = `
for (key, v) in samples
    idx = floor(v * 100) + 1
    w = weights[idx]
    margin = w * v
    g = sigmoid(margin) - 1
    w_buf[idx] += 0 - step_size * g
end
`
)

// dslConfig collects runDSL's knobs (one per -engine dsl flag).
type dslConfig struct {
	App        string // mf | lda | slr
	Backend    string // "" | vm | compiled | interp
	Transport  string // "" | inproc | tcp
	Workers    int
	Passes     int
	Report     bool   // print the per-worker report
	ReportJSON string // write the machine-readable report document here
	CkptDir    string
	CkptEvery  int64

	Adapt      bool    // adaptive re-planning at pass boundaries
	AdaptSkew  float64 // recut trigger (0 = analyzer default)
	SkewDemoUS float64 // synthetic straggler: µs/iteration delay on worker 0
	AssertDrop float64 // required fractional skew drop after a recut (0 = off)
	Grow       int     // grow the fleet to this size at the first boundary

	Heartbeat time.Duration // staleness bound for silent workers (0 = off)
}

// runDSL trains an application written purely in Orion's DSL on the
// real distributed runtime, with the loop backend selectable from the
// command line: "" compiles loop bodies to closures and falls back to
// the interpreter outside the compiled subset, "compiled" makes
// fallback an error, "interp" forces the reference interpreter. The
// transport is in-process by default; "tcp" runs the same executors
// over real sockets (loopback), which exercises the full wire protocol
// including trace collection. A non-empty CkptDir enables coordinated
// checkpointing (and in-loop recovery from worker loss); when the
// directory already holds a committed checkpoint from an earlier run
// of the same program, training warm-starts from it.
func runDSL(cfg dslConfig) error {
	app, workers, passes := cfg.App, cfg.Workers, cfg.Passes
	if workers <= 0 {
		workers = 4
	}
	var (
		sess *driver.Session
		err  error
	)
	switch cfg.Transport {
	case "", "inproc":
		sess, err = driver.NewLocalSession(workers)
	case "tcp":
		sess, err = driver.NewLocalSessionOver(runtime.TCP{}, "127.0.0.1:0", "127.0.0.1:0", workers)
	default:
		return fmt.Errorf("unknown -transport %q (inproc | tcp)", cfg.Transport)
	}
	if err != nil {
		return err
	}
	defer sess.Close()
	if cfg.ReportJSON != "" {
		// Written before Close (defers run LIFO) so a failed run still
		// leaves a partial report with the flight log's final events.
		defer func() {
			doc := &obs.ReportDoc{
				Loops:  sess.AllReports(),
				Peers:  obs.Default.PeerTraffic(),
				Flight: obs.Flight().Events(),
			}
			if werr := doc.WriteFile(cfg.ReportJSON); werr == nil {
				fmt.Fprintf(os.Stderr, "orion-run: report written to %s\n", cfg.ReportJSON)
			} else {
				fmt.Fprintf(os.Stderr, "orion-run: report-json: %v\n", werr)
			}
		}()
	}
	if err := sess.SetBackend(cfg.Backend); err != nil {
		return err
	}
	sess.SetCheckpointDir(cfg.CkptDir)
	sess.SetCheckpointEvery(cfg.CkptEvery)
	if cfg.Heartbeat > 0 {
		// Arms both staleness detection (a silent worker is declared
		// lost) and the step-stall bound that rescues wedged-but-alive
		// links (e.g. a desynced stream after hostile corruption).
		sess.SetHeartbeat(cfg.Heartbeat)
	}
	if cfg.Adapt {
		sess.SetAdapt(cfg.AdaptSkew)
	}
	if cfg.SkewDemoUS > 0 {
		// Synthetic straggler: pad worker 0's compute per iteration, so
		// the adaptive trigger has honest (measured) skew to react to.
		perIter := time.Duration(cfg.SkewDemoUS * float64(time.Microsecond))
		runtime.SetBlockDelay(func(execID, iters int) time.Duration {
			if execID == 0 {
				return time.Duration(iters) * perIter
			}
			return 0
		})
		defer runtime.SetBlockDelay(nil)
	}
	if cfg.Grow > 0 {
		if err := sess.Grow(cfg.Grow); err != nil {
			return err
		}
	}

	var (
		src        string
		metric     func() float64
		metricName string
	)
	defPasses := 4
	switch app {
	case "mf":
		const rows, cols, rank = 80, 60, 8
		ds := data.NewRatings(data.RatingsConfig{Rows: rows, Cols: cols, NNZ: 1500, Rank: rank, Noise: 0.05, Seed: 3})
		ratings := sess.CreateArray("ratings", false, rows, cols)
		for i := range ds.I {
			ratings.SetAt(ds.V[i], ds.I[i], ds.J[i])
		}
		rng := rand.New(rand.NewSource(1))
		sess.CreateArray("W", true, rank, rows).FillRandn(rng, 1.0/rank)
		sess.CreateArray("H", true, rank, cols).FillRandn(rng, 1.0)
		sess.SetGlobal("step_size", 0.02)
		src, metricName = mfDSL, "rmse"
		metric = func() float64 {
			r, w, h := sess.Array("ratings"), sess.Array("W"), sess.Array("H")
			var sum float64
			var n int
			r.ForEach(func(idx []int64, v float64) {
				wv, hv := w.Vec(idx[0]), h.Vec(idx[1])
				var pred float64
				for d := range wv {
					pred += wv[d] * hv[d]
				}
				sum += (pred - v) * (pred - v)
				n++
			})
			return math.Sqrt(sum / float64(n))
		}

	case "lda":
		const docs, vocab, topics = 120, 80, 6
		c := data.NewCorpus(data.CorpusConfig{Docs: docs, Vocab: vocab, Topics: topics, MeanDocLen: 30, Seed: 4})
		tokens := sess.CreateArray("tokens", false, docs, vocab)
		z := sess.CreateArray("z", false, docs, vocab)
		dt := sess.CreateArray("doc_topic", true, topics, docs)
		wt := sess.CreateArray("word_topic", true, topics, vocab)
		totals := sess.CreateArray("totals", true, topics)
		if err := sess.CreateBuffer("tot_buf", "totals"); err != nil {
			return err
		}
		i := 0
		for d, words := range c.Words {
			seen := map[int64]bool{}
			for _, w := range words {
				if seen[w] {
					continue
				}
				seen[w] = true
				tokens.SetAt(1, int64(d), w)
				topic := int64(i%topics) + 1
				z.SetAt(float64(topic), int64(d), w)
				dt.AddAt(1, topic-1, int64(d))
				wt.AddAt(1, topic-1, w)
				totals.AddAt(1, topic-1)
				i++
			}
		}
		sess.SetGlobal("K", topics)
		sess.SetGlobal("alpha", 0.5)
		sess.SetGlobal("beta", 0.1)
		sess.SetGlobal("vbeta", 0.1*vocab)
		src, metricName = ldaDSL, "log-likelihood"
		metric = func() float64 {
			dt, wt, totals := sess.Array("doc_topic"), sess.Array("word_topic"), sess.Array("totals")
			var ll float64
			for k := int64(0); k < topics; k++ {
				g, _ := math.Lgamma(totals.At(k) + 0.1*vocab)
				ll -= g
				for w := int64(0); w < vocab; w++ {
					g, _ := math.Lgamma(wt.At(k, w) + 0.1)
					ll += g
				}
				for d := int64(0); d < docs; d++ {
					g, _ := math.Lgamma(dt.At(k, d) + 0.5)
					ll += g
				}
			}
			return ll
		}

	case "slr":
		const samples, dim = 1000, 128
		rng := rand.New(rand.NewSource(7))
		xs := sess.CreateArray("samples", true, samples)
		xs.Map(func(float64) float64 { return rng.Float64() * 1.27 })
		sess.CreateArray("weights", true, dim)
		if err := sess.CreateBuffer("w_buf", "weights"); err != nil {
			return err
		}
		sess.SetGlobal("step_size", 0.05)
		src, metricName = slrDSL, "weights L2"
		metric = func() float64 {
			var sum float64
			sess.Array("weights").ForEach(func(_ []int64, v float64) { sum += v * v })
			return math.Sqrt(sum)
		}

	default:
		return fmt.Errorf("-engine dsl supports apps mf | lda | slr, not %q", app)
	}
	if passes <= 0 {
		passes = defPasses
	}

	if cfg.CkptDir != "" {
		if err := resumeFromCheckpoint(os.Stderr, sess, app, src, cfg.CkptDir); err != nil {
			return err
		}
	}

	chosen, err := sess.KernelBackend(src)
	if err != nil {
		return err
	}
	fmt.Printf("dsl on %s: %d workers, %d passes, %s backend\n", app, workers, passes, chosen)
	fmt.Printf("%-6s  %-14s\n", "pass", metricName)
	if cfg.Adapt || cfg.Grow > 0 {
		// Adaptive re-planning and elastic grow trigger at the loop
		// boundaries *inside* one ParallelFor, so the passes run as a
		// single multi-pass loop instead of one call per pass.
		if _, err := sess.ParallelFor(src, driver.Passes(passes)); err != nil {
			return renderWorkerLost(os.Stderr, app, src, err)
		}
		fmt.Printf("%-6d  %-14.6g\n", passes, metric())
		if cfg.Grow > 0 {
			fmt.Printf("fleet: %d workers\n", sess.Workers())
		}
		if err := reportAdaptTrail(os.Stdout, sess, cfg.AssertDrop); err != nil {
			return err
		}
	} else {
		for p := 1; p <= passes; p++ {
			if _, err := sess.ParallelFor(src); err != nil {
				return renderWorkerLost(os.Stderr, app, src, err)
			}
			fmt.Printf("%-6d  %-14.6g\n", p, metric())
		}
	}
	if d := sess.Diagnostics().First(diag.CodeBackend); d != nil {
		fmt.Println(d.Message)
	}
	if cfg.Report {
		if r := sess.CombinedReport(); r != nil {
			fmt.Println()
			fmt.Print(r.Render())
		}
	}
	return nil
}

// reportAdaptTrail prints the adaptive re-planning decisions — one per
// evaluated pass boundary — and, when assertDrop > 0, fails unless the
// first recut cut the skew index by at least that fraction by the last
// boundary (the adapt-smoke gate).
func reportAdaptTrail(w io.Writer, sess *driver.Session, assertDrop float64) error {
	trail := sess.AdaptTrail()
	if len(trail) == 0 {
		if assertDrop > 0 {
			return fmt.Errorf("adapt: no boundaries evaluated (a recut needs at least 2 passes)")
		}
		return nil
	}
	fmt.Fprintf(w, "\nadaptive re-planning trail (skew = max/median segment compute):\n")
	firstRecut := -1
	for i, d := range trail {
		action := "kept cuts"
		if d.Recut {
			action = "recut partitions"
			if firstRecut < 0 {
				firstRecut = i
			}
		}
		fmt.Fprintf(w, "  boundary at pass %-3d  skew %-6.2f  %s\n", d.Pass, d.SkewIndex, action)
	}
	if assertDrop <= 0 {
		return nil
	}
	if firstRecut < 0 {
		return fmt.Errorf("adapt: skew never reached the recut threshold")
	}
	if firstRecut == len(trail)-1 {
		return fmt.Errorf("adapt: recut fell on the last boundary; no post-recut segment to judge (add passes)")
	}
	pre, post := trail[firstRecut].SkewIndex, trail[len(trail)-1].SkewIndex
	drop := 1 - post/pre
	fmt.Fprintf(w, "skew %.2fx -> %.2fx across the recut (%.0f%% drop)\n", pre, post, drop*100)
	if drop < assertDrop {
		return fmt.Errorf("adapt: skew dropped %.0f%%, below the required %.0f%%", drop*100, assertDrop*100)
	}
	return nil
}

// resumeFromCheckpoint warm-starts the session from the newest
// committed pass-boundary checkpoint in dir, if one exists: the
// snapshotted arrays replace the freshly initialized ones, so a rerun
// of a crashed (or simply interrupted) orion-run continues training
// instead of starting over. The manifest's plan fingerprint must match
// the current program's artifact — a positioned ORN303 rejects state
// from a different program. Mid-pass snapshots are skipped; they are
// only meaningful to in-loop recovery, which knows the exact ring
// phase they were cut at.
func resumeFromCheckpoint(w io.Writer, sess *driver.Session, app, src, dir string) error {
	mans, err := dsm.ListCheckpoints(dir)
	if err != nil || len(mans) == 0 {
		return err
	}
	art, err := sess.PlanArtifact(src)
	if err != nil {
		return err
	}
	for _, man := range mans {
		if man.ResumeStep != 0 {
			continue
		}
		file := app + ".dsl"
		pos := diag.Pos{File: file}
		if loop, perr := lang.Parse(src); perr == nil {
			pos.Line, pos.Col = loop.At.Line, loop.At.Col
		}
		if d := check.CheckResume(man.Loop, art.ContentHash, man.Fingerprint, pos); d != nil {
			var l diag.List
			l.Add(*d)
			diag.Render(w, l, map[string]string{file: src})
			return fmt.Errorf("resume rejected: %w", check.ErrResumeMismatch)
		}
		restored, err := dsm.RestoreCheckpoint(dir, man)
		if err != nil {
			return err
		}
		for _, a := range restored {
			sess.RegisterArray(a)
		}
		fmt.Fprintf(w, "orion-run: resumed %d arrays from checkpoint clock %d in %s\n",
			len(restored), man.Clock, dir)
		return nil
	}
	return nil
}

// renderWorkerLost turns a mid-loop executor loss into a positioned
// ORN301 diagnostic on the loop header, rendered to w with source
// context; any other ParallelFor error passes through untouched. The
// returned error is always non-nil, so orion-run exits non-zero instead
// of reporting the pass's partial results as success.
func renderWorkerLost(w io.Writer, app, src string, err error) error {
	if !errors.Is(err, runtime.ErrWorkerLost) {
		return err
	}
	file := app + ".dsl"
	pos := diag.Pos{File: file}
	if loop, perr := lang.Parse(src); perr == nil {
		pos.Line, pos.Col = loop.At.Line, loop.At.Col
	}
	var l diag.List
	l.Add(diag.Errorf(diag.CodeWorkerLost, pos,
		"the interrupted pass was not applied; restart the lost worker and rerun",
		"%v", err))
	diag.Render(w, l, map[string]string{file: src})
	return fmt.Errorf("run aborted: %w", err)
}
